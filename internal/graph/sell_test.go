package graph

import (
	"math"
	"testing"

	"ingrass/internal/vecmath"
)

// starGraph builds a hub-and-spoke graph: the degree distribution SELL's
// σ-window sort exists to absorb (one huge row, n-1 tiny ones).
func starGraph(n int) *Graph {
	g := New(n, n-1)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, 1+0.25*float64(v%7))
	}
	return g
}

// sparseGraphWithEmptyRows builds a random graph guaranteed to leave many
// isolated (empty-row) nodes.
func sparseGraphWithEmptyRows(seed uint64, n int) *Graph {
	return randomGraphFromSeed(seed, n, n/4)
}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// signedTestVector fills x with values of both signs (including exact
// negatives) so the padded-slot hazard — subtracting 0*x flips -0
// accumulators — would be caught if a kernel ever touched padding.
func signedTestVector(seed uint64, n int) []float64 {
	r := vecmath.NewRNG(seed)
	x := make([]float64, n)
	r.FillNormal(x)
	for i := range x {
		if i%5 == 0 {
			x[i] = -math.Abs(x[i])
		}
	}
	return x
}

func sellTestCases() map[string]*Graph {
	return map[string]*Graph{
		"random_n10":      randomGraphFromSeed(1, 10, 25),
		"random_n101":     randomGraphFromSeed(2, 101, 400), // partial tail chunk
		"random_n256":     randomGraphFromSeed(3, 256, 1024),
		"empty_rows_n200": sparseGraphWithEmptyRows(4, 200),
		"star_n97":        starGraph(97),
		"no_edges_n40":    New(40, 0),
		"single_node":     New(1, 0),
	}
}

func TestSELLLapMulBitIdenticalToCSR(t *testing.T) {
	for name, g := range sellTestCases() {
		for _, sigma := range []int{0, 8, 64, DefaultSellSigma} {
			c := NewCSR(g)
			s := NewSELL(c, sigma, nil)
			n := c.N
			x := signedTestVector(uint64(n)*31+uint64(sigma), n)
			want := make([]float64, n)
			got := make([]float64, n)
			c.LapMul(want, x)
			s.LapMul(got, x)
			if i, ok := bitsEqual(want, got); !ok {
				t.Errorf("%s sigma=%d: LapMul differs at %d: csr=%x sell=%x",
					name, sigma, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
			}
			c.AdjMul(want, x)
			s.AdjMul(got, x)
			if i, ok := bitsEqual(want, got); !ok {
				t.Errorf("%s sigma=%d: AdjMul differs at %d", name, sigma, i)
			}
		}
	}
}

func TestSELLLapMulMultiBitIdenticalToCSR(t *testing.T) {
	for name, g := range sellTestCases() {
		c := NewCSR(g)
		s := NewSELL(c, 32, nil)
		n := c.N
		for _, b := range []int{1, 2, 3, 7, 16} {
			x := make([][]float64, b)
			got := make([][]float64, b)
			want := make([]float64, n)
			for j := range x {
				x[j] = signedTestVector(uint64(n*17+j), n)
				got[j] = make([]float64, n)
			}
			s.LapMulMulti(got, x)
			for j := range x {
				c.LapMul(want, x[j]) // serial CSR column is the reference
				if i, ok := bitsEqual(want, got[j]); !ok {
					t.Errorf("%s width=%d col=%d: differs at %d", name, b, j, i)
				}
			}
		}
	}
}

// The σ-window sort permutation must be a bijection that round-trips, stay
// inside its window, and order row lengths descending within each window.
func TestSELLSigmaPermutationRoundTrip(t *testing.T) {
	for name, g := range sellTestCases() {
		const sigma = 16
		c := NewCSR(g)
		s := NewSELL(c, sigma, nil)
		n := c.N
		seen := make([]bool, n)
		inv := make([]int, n)
		for r, u := range s.Perm {
			if int(u) < 0 || int(u) >= n {
				t.Fatalf("%s: Perm[%d]=%d out of range", name, r, u)
			}
			if seen[u] {
				t.Fatalf("%s: Perm maps two rows to %d", name, u)
			}
			seen[u] = true
			inv[u] = r
			// Window-local: a row never leaves its σ window.
			if r/sigma != int(u)/sigma {
				t.Errorf("%s: row %d sorted into position %d, outside its σ=%d window", name, u, r, sigma)
			}
			if got := c.RowPtr[u+1] - c.RowPtr[u]; got != int(s.RowLen[r]) {
				t.Errorf("%s: RowLen[%d]=%d, CSR says %d", name, r, s.RowLen[r], got)
			}
		}
		for u := range inv {
			if int(s.Perm[inv[u]]) != u {
				t.Fatalf("%s: permutation does not round-trip at %d", name, u)
			}
		}
		for w0 := 0; w0 < n; w0 += sigma {
			w1 := w0 + sigma
			if w1 > n {
				w1 = n
			}
			for r := w0 + 1; r < w1; r++ {
				if s.RowLen[r] > s.RowLen[r-1] {
					t.Errorf("%s: lengths not descending within window at %d", name, r)
				}
			}
		}
	}
}

// Structure checks: every real CSR entry appears in its slot in per-row
// order, padding slots carry zero weight, and the footprint predictor
// agrees with the built object.
func TestSELLStructureAndFootprint(t *testing.T) {
	for name, g := range sellTestCases() {
		c := NewCSR(g)
		const sigma = 32
		s := NewSELL(c, sigma, nil)
		if s.NNZ() != c.NNZ() {
			t.Fatalf("%s: NNZ %d != CSR %d", name, s.NNZ(), c.NNZ())
		}
		for ch := 0; ch < s.NumChunks(); ch++ {
			base := s.ChunkPtr[ch]
			if s.ChunkPtr[ch+1]-base != SellC*int(s.ChunkLen[ch]) {
				t.Fatalf("%s: chunk %d slot extent mismatch", name, ch)
			}
			for lane := 0; lane < SellC && ch*SellC+lane < s.N; lane++ {
				r := ch*SellC + lane
				u := int(s.Perm[r])
				row := c.RowPtr[u]
				for k := 0; k < int(s.ChunkLen[ch]); k++ {
					idx := base + k*SellC + lane
					if k < int(s.RowLen[r]) {
						if int(s.Cols[idx]) != c.ColIdx[row+k] || s.Vals[idx] != c.Weights[row+k] {
							t.Fatalf("%s: chunk %d lane %d slot %d entry mismatch", name, ch, lane, k)
						}
					} else if s.Vals[idx] != 0 {
						t.Fatalf("%s: padding slot %d has nonzero weight", name, idx)
					}
				}
			}
		}
		bytes, pad := SellFootprint(c, sigma)
		if math.Abs(pad-s.PaddingRatio()) > 1e-15 {
			t.Errorf("%s: footprint padding %v != built %v", name, pad, s.PaddingRatio())
		}
		built := 8*(s.NumChunks()+1) + 4*s.NumChunks() + 4*s.NumChunks() +
			4*s.Slots() + 8*s.Slots() + 4*s.N + 4*s.N
		if bytes != built {
			t.Errorf("%s: footprint bytes %d != built %d", name, bytes, built)
		}
	}
}

// σ-sorting must crush padding on skewed interleaved degrees: with hub
// rows scattered among leaf rows, every unsorted chunk containing a hub
// pads its leaf lanes to the hub length; a window spanning several hubs
// groups them into the same chunks, leaving leaf chunks dense. (A single
// global hub is the case sorting cannot help — it dominates one chunk
// either way — which is why this test interleaves many hubs.)
func TestSELLSigmaSortReducesPaddingOnSkewedRows(t *testing.T) {
	// 16 hubs of degree 15 at indices 0, 16, 32, ...; leaves have degree 1.
	const period, hubs = 16, 16
	g := New(period*hubs, hubs*(period-1))
	for h := 0; h < hubs; h++ {
		for k := 1; k < period; k++ {
			g.AddEdge(h*period, h*period+k, 1+0.1*float64(k))
		}
	}
	c := NewCSR(g)
	sorted := NewSELL(c, 64, nil) // window spans 4 hubs → hubs share chunks
	unsorted := NewSELL(c, 1, nil)
	if sorted.PaddingRatio() >= unsorted.PaddingRatio() {
		t.Fatalf("sorting did not reduce padding: sorted=%v unsorted=%v",
			sorted.PaddingRatio(), unsorted.PaddingRatio())
	}
	if sorted.PaddingRatio() > 0.05 {
		t.Errorf("sorted padding ratio %v, want near zero", sorted.PaddingRatio())
	}
}

func TestSELLChunkPartitionSpansReproduceFullProduct(t *testing.T) {
	for name, g := range sellTestCases() {
		c := NewCSR(g)
		s := NewSELL(c, 64, nil)
		n := c.N
		x := signedTestVector(uint64(n)+99, n)
		want := make([]float64, n)
		s.LapMul(want, x)
		for _, parts := range []int{1, 2, 3, 7, 64, s.NumChunks() + 5} {
			part := s.NNZChunkPartition(parts)
			if part[0] != 0 || part[len(part)-1] != s.NumChunks() {
				t.Fatalf("%s parts=%d: partition does not cover chunks: %v", name, parts, part)
			}
			for i := 1; i < len(part); i++ {
				if part[i] < part[i-1] {
					t.Fatalf("%s parts=%d: partition not monotone: %v", name, parts, part)
				}
			}
			got := make([]float64, n)
			for i := 1; i < len(part); i++ {
				s.LapMulChunks(got, x, part[i-1], part[i])
			}
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("%s parts=%d: span-wise product differs at %d", name, parts, i)
			}
		}
	}
}

// Satellite: CSR.NNZPartition degenerate inputs — previously only exercised
// indirectly through LapMulParallel.
func TestNNZPartitionDegenerate(t *testing.T) {
	check := func(t *testing.T, c *CSR, chunks int) []int {
		t.Helper()
		part := c.NNZPartition(chunks)
		if part[0] != 0 || part[len(part)-1] != c.N {
			t.Fatalf("chunks=%d: partition does not cover rows: %v", chunks, part)
		}
		for i := 1; i < len(part); i++ {
			if part[i] < part[i-1] {
				t.Fatalf("chunks=%d: partition not monotone: %v", chunks, part)
			}
		}
		return part
	}

	t.Run("width_exceeds_rows_with_nonzeros", func(t *testing.T) {
		// 3 real rows (one triangle) in a 64-node graph, asked for 16 ways.
		g := New(64, 3)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 0, 1)
		c := NewCSR(g)
		part := check(t, c, 16)
		x := signedTestVector(7, c.N)
		want := make([]float64, c.N)
		got := make([]float64, c.N)
		c.LapMul(want, x)
		for i := 1; i < len(part); i++ {
			c.lapMulRange(got, x, part[i-1], part[i])
		}
		if i, ok := bitsEqual(want, got); !ok {
			t.Fatalf("span-wise product differs at %d", i)
		}
	})

	t.Run("all_rows_empty", func(t *testing.T) {
		c := NewCSR(New(33, 0))
		for _, chunks := range []int{1, 2, 8, 64} {
			part := check(t, c, chunks)
			x := signedTestVector(8, c.N)
			got := make([]float64, c.N)
			for i := 1; i < len(part); i++ {
				c.lapMulRange(got, x, part[i-1], part[i])
			}
			for i, v := range got {
				if v != 0 {
					t.Fatalf("chunks=%d: empty operator produced nonzero at %d: %v", chunks, i, v)
				}
			}
			_ = part
		}
	})

	t.Run("single_row", func(t *testing.T) {
		g := New(1, 0)
		check(t, NewCSR(g), 4)
	})
}

// SELL built through an arena-style Alloc must be byte-for-byte the same
// operator as the heap-built one (exercised here with a simple recording
// allocator; the real kernel.Arena implements the same interface).
type countingAlloc struct{ calls int }

func (a *countingAlloc) Float64(n int) []float64 { a.calls++; return make([]float64, n) }
func (a *countingAlloc) Int(n int) []int         { a.calls++; return make([]int, n) }
func (a *countingAlloc) Int32(n int) []int32     { a.calls++; return make([]int32, n) }

func TestSELLBuildThroughAlloc(t *testing.T) {
	c := NewCSR(randomGraphFromSeed(11, 120, 480))
	heap := NewSELL(c, 32, nil)
	al := &countingAlloc{}
	ar := NewSELL(c, 32, al)
	if al.calls == 0 {
		t.Fatal("alloc never used")
	}
	if i, ok := bitsEqual(heap.Vals, ar.Vals); !ok {
		t.Fatalf("Vals differ at %d", i)
	}
	for i := range heap.Cols {
		if heap.Cols[i] != ar.Cols[i] {
			t.Fatalf("Cols differ at %d", i)
		}
	}
	x := signedTestVector(5, c.N)
	a, b := make([]float64, c.N), make([]float64, c.N)
	heap.LapMul(a, x)
	ar.LapMul(b, x)
	if i, ok := bitsEqual(a, b); !ok {
		t.Fatalf("products differ at %d", i)
	}
}

func TestCSRCompactIntoPreservesOperator(t *testing.T) {
	c := NewCSR(randomGraphFromSeed(13, 90, 300))
	al := &countingAlloc{}
	cc := c.CompactInto(al)
	x := signedTestVector(6, c.N)
	a, b := make([]float64, c.N), make([]float64, c.N)
	c.LapMul(a, x)
	cc.LapMul(b, x)
	if i, ok := bitsEqual(a, b); !ok {
		t.Fatalf("compacted CSR differs at %d", i)
	}
	if c.ArenaBytes() != 8*(len(c.RowPtr)+len(c.ColIdx)+len(c.Weights)+len(c.Degree)) {
		t.Fatal("ArenaBytes miscounts")
	}
}
