package graph

import (
	"math"
	"runtime"
	"testing"
)

// buildSized returns a connected graph with exactly n nodes: a ring with
// chords, deterministic in n, plus weight variety so wrong partitions or
// double-written rows cannot cancel out.
func buildSized(n int) *Graph {
	g := New(n, 0)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 1+0.001*float64(i%97))
	}
	for i := 0; i+17 < n; i += 13 {
		g.AddEdge(i, i+17, 0.5+0.01*float64(i%31))
	}
	return g
}

// starN is the worst-case nnz skew for row partitioning: node 0 holds half
// of all nonzeros.
func starN(n int) *Graph {
	g := New(n, 0)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 1+0.0001*float64(i))
	}
	return g
}

// withEmptyRows adds k isolated nodes (empty CSR rows) after g's nodes.
func withEmptyRows(g *Graph, k int) *Graph {
	out := New(g.NumNodes()+k, 0)
	for _, e := range g.Edges() {
		out.AddEdge(e.U, e.V, e.W)
	}
	return out
}

// TestLapMulParallelBitForBit is the determinism property from the issue:
// LapMulParallel must equal LapMul bit-for-bit across sizes (straddling the
// old hardcoded 4096 cutover) and worker counts, including counts above
// GOMAXPROCS and the chunk count, empty rows, and the star graph's nnz
// skew. Equality is exact (==, not a tolerance): every row is written by
// one worker with the serial accumulation order.
func TestLapMulParallelBitForBit(t *testing.T) {
	old := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(old)

	sizes := []int{10, 4095, 4096, 100000}
	workers := []int{1, 2, 3, 7, 16}
	for _, n := range sizes {
		cases := map[string]*Graph{"ring": buildSized(n)}
		if n >= 4096 {
			cases["star"] = starN(n)
			cases["emptyrows"] = withEmptyRows(buildSized(n-n/8), n/8)
		}
		for name, g := range cases {
			csr := NewCSR(g)
			x := make([]float64, csr.N)
			for i := range x {
				x[i] = math.Sin(float64(i)) + 0.25*math.Cos(float64(3*i))
			}
			want := make([]float64, csr.N)
			csr.LapMul(want, x)
			got := make([]float64, csr.N)
			for _, w := range workers {
				for i := range got {
					got[i] = math.NaN() // any unwritten row must be caught
				}
				csr.LapMulParallel(got, x, w)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d %s workers=%d: row %d: %v != %v",
							n, name, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestLapMulParallelClamping is the regression test for the useless-
// goroutine bug: worker counts above GOMAXPROCS or the row count must be
// clamped, and sub-cutover products must not fork at all.
func TestLapMulParallelClamping(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	if got := clampSpMVWorkers(1000, 50000, 1<<20); got != 4 {
		t.Errorf("workers=1000 clamps to %d, want GOMAXPROCS=4", got)
	}
	if got := clampSpMVWorkers(3, 2, 1<<20); got != 2 {
		t.Errorf("workers above row count clamps to %d, want 2", got)
	}
	if got := clampSpMVWorkers(4, 50000, spawnCutover-1); got != 1 {
		t.Errorf("sub-cutover work got %d workers, want serial", got)
	}
	if got := clampSpMVWorkers(0, 50000, 1<<20); got != 1 {
		t.Errorf("workers=0 got %d, want 1", got)
	}

	// A wildly oversubscribed call must still be correct (and not leave
	// goroutines behind: each spawn joins before return).
	g := buildSized(20000)
	csr := NewCSR(g)
	x := make([]float64, csr.N)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	want := make([]float64, csr.N)
	csr.LapMul(want, x)
	got := make([]float64, csr.N)
	before := runtime.NumGoroutine()
	csr.LapMulParallel(got, x, 1<<16)
	after := runtime.NumGoroutine()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("oversubscribed row %d mismatch", i)
		}
	}
	if after > before+4 {
		t.Errorf("goroutines leaked or oversubscribed: %d -> %d", before, after)
	}
}

// TestNNZPartitionInvariants checks boundary structure and balance: chunks
// cover [0, N) monotonically, and on the star graph no chunk exceeds
// roughly twice the even share of work (the hub row is indivisible, so one
// chunk necessarily carries it).
func TestNNZPartitionInvariants(t *testing.T) {
	for name, g := range map[string]*Graph{
		"ring":  buildSized(10000),
		"star":  starN(10000),
		"empty": withEmptyRows(starN(5000), 5000),
		"tiny":  buildSized(3),
	} {
		csr := NewCSR(g)
		for _, chunks := range []int{1, 2, 5, 8, 64} {
			part := csr.NNZPartition(chunks)
			eff := len(part) - 1
			if part[0] != 0 || part[eff] != csr.N {
				t.Fatalf("%s chunks=%d: bad cover %v", name, chunks, []int{part[0], part[eff]})
			}
			rowWork := func(u int) int { return csr.RowPtr[u+1] - csr.RowPtr[u] + 2 }
			total := csr.SpMVWork()
			for i := 0; i < eff; i++ {
				if part[i+1] < part[i] {
					t.Fatalf("%s chunks=%d: boundary %d decreases", name, chunks, i)
				}
				var work, maxRow int
				for u := part[i]; u < part[i+1]; u++ {
					work += rowWork(u)
					if rowWork(u) > maxRow {
						maxRow = rowWork(u)
					}
				}
				// Each chunk carries at most an even share plus one
				// indivisible row of slack.
				if work > total/eff+maxRow+2 {
					t.Errorf("%s chunks=%d: chunk %d work %d >> share %d",
						name, chunks, i, work, total/eff)
				}
			}
		}
	}
}
