package graph

import (
	"bytes"
	"math"
	"testing"
)

func TestBinaryRoundTripExact(t *testing.T) {
	g := New(6, 8)
	g.AddEdge(0, 1, 1.25)
	g.AddEdge(1, 2, 3e-7)
	g.AddEdge(2, 3, 0.1) // not exactly representable
	g.AddEdge(3, 4, 7)
	g.AddEdge(4, 5, 2.5)
	g.AddEdge(5, 0, 1e12)
	// Drift the totalWeight accumulator through a mutation history so the
	// cached value differs from a fresh re-accumulation.
	g.SetWeight(2, 0.30000000000000004)
	g.ScaleWeight(0, 1.0/3.0)
	g.SetWeight(4, 1e-13)

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %v vs %v", got, g)
	}
	if math.Float64bits(got.TotalWeight()) != math.Float64bits(g.TotalWeight()) {
		t.Fatalf("totalWeight bits differ: %x vs %x",
			math.Float64bits(got.TotalWeight()), math.Float64bits(g.TotalWeight()))
	}
	for i, e := range g.Edges() {
		ge := got.Edge(i)
		if ge.U != e.U || ge.V != e.V || math.Float64bits(ge.W) != math.Float64bits(e.W) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ge, e)
		}
	}
	if err := got.Validate(); err != nil {
		// totalWeight was restored, not recomputed; Validate tolerates
		// accumulator drift only within 1e-9 relative, which this history
		// stays inside.
		t.Fatalf("decoded graph invalid: %v", err)
	}
	// Adjacency must be fully rebuilt: FindEdge works on the decoded graph.
	if idx, ok := got.FindEdge(3, 2); !ok || idx != 2 {
		t.Fatalf("FindEdge(3,2) = %d, %v", idx, ok)
	}
	// Re-encoding the decoded graph must be byte-identical.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded bytes differ from original encoding")
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := New(3, 2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), full...)
		b[0] = 'X'
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Fatal("want error on bad magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(full); cut += 3 {
			if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("want error on truncation at %d bytes", cut)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
			t.Fatal("want error on empty input")
		}
	})
}
