package graph

import (
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/vecmath"
)

// triangle returns K3 with unit weights.
func triangle() *Graph {
	g := New(3, 3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	return g
}

// path returns a path graph 0-1-...-(n-1) with the given uniform weight.
func path(n int, w float64) *Graph {
	g := New(n, n-1)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, w)
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4, 0)
	i := g.AddEdge(0, 1, 2.5)
	if i != 0 {
		t.Fatalf("first edge index %d", i)
	}
	if g.NumEdges() != 1 || g.NumNodes() != 4 {
		t.Fatalf("size %v", g)
	}
	if g.TotalWeight() != 2.5 {
		t.Fatalf("total weight %v", g.TotalWeight())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		u, v int
		w    float64
	}{
		{"self-loop", 1, 1, 1},
		{"negative weight", 0, 1, -1},
		{"zero weight", 0, 1, 0},
		{"nan weight", 0, 1, math.NaN()},
		{"inf weight", 0, 1, math.Inf(1)},
		{"out of range", 0, 9, 1},
		{"negative node", -1, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %s", tc.name)
				}
			}()
			New(3, 0).AddEdge(tc.u, tc.v, tc.w)
		})
	}
}

func TestWeightMutation(t *testing.T) {
	g := triangle()
	g.SetWeight(0, 4)
	if g.Edge(0).W != 4 || g.TotalWeight() != 6 {
		t.Fatalf("after SetWeight: %v total %v", g.Edge(0), g.TotalWeight())
	}
	g.AddWeight(0, 1)
	if g.Edge(0).W != 5 {
		t.Fatalf("after AddWeight: %v", g.Edge(0))
	}
	g.ScaleWeight(0, 2)
	if g.Edge(0).W != 10 {
		t.Fatalf("after ScaleWeight: %v", g.Edge(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFindEdge(t *testing.T) {
	g := triangle()
	if i, ok := g.FindEdge(2, 0); !ok || i != 2 {
		t.Fatalf("FindEdge(2,0) = %d, %v", i, ok)
	}
	if _, ok := g.FindEdge(0, 0); ok {
		t.Fatal("self pair should not be found")
	}
	g2 := New(5, 0)
	if _, ok := g2.FindEdge(0, 4); ok {
		t.Fatal("edge should not exist")
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge failed")
	}
}

func TestEdgeKey(t *testing.T) {
	e1 := Edge{U: 3, V: 7, W: 1}
	e2 := Edge{U: 7, V: 3, W: 2}
	if e1.Key() != e2.Key() {
		t.Fatal("Key must be orientation independent")
	}
	if KeyOf(3, 7) != e1.Key() {
		t.Fatal("KeyOf disagrees with Edge.Key")
	}
	if KeyOf(3, 7) == KeyOf(3, 8) {
		t.Fatal("distinct pairs collide")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.AddEdge(0, 1, 5)
	c.SetWeight(0, 9)
	if g.NumEdges() != 3 || g.Edge(0).W != 1 {
		t.Fatal("clone mutated original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNode(t *testing.T) {
	g := triangle()
	id := g.AddNode()
	if id != 3 || g.NumNodes() != 4 {
		t.Fatalf("AddNode gave %d", id)
	}
	g.AddEdge(3, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := triangle()
	s := g.Subgraph([]int{0, 2})
	if s.NumEdges() != 2 || s.NumNodes() != 3 {
		t.Fatalf("subgraph %v", s)
	}
	if s.Edge(0) != g.Edge(0) || s.Edge(1) != g.Edge(2) {
		t.Fatal("wrong edges kept")
	}
}

func TestCoalesce(t *testing.T) {
	g := New(3, 0)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2) // parallel, reversed orientation
	g.AddEdge(1, 2, 3)
	c := g.Coalesce()
	if c.NumEdges() != 2 {
		t.Fatalf("coalesced edges = %d", c.NumEdges())
	}
	if i, ok := c.FindEdge(0, 1); !ok || c.Edge(i).W != 3 {
		t.Fatalf("merged weight wrong: %v", c.Edges())
	}
	if math.Abs(c.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatal("coalesce must preserve total weight")
	}
}

func TestQuadraticFormMatchesLapMul(t *testing.T) {
	g := triangle()
	g.SetWeight(1, 2.5)
	x := []float64{1, -2, 0.5}
	// x' L x computed two ways.
	lx := make([]float64, 3)
	g.LapMul(lx, x)
	got := vecmath.Dot(x, lx)
	want := g.QuadraticForm(x)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("x'Lx = %v vs quadratic form %v", got, want)
	}
}

func TestLapMulConstantNullspace(t *testing.T) {
	g := path(10, 2.0)
	ones := make([]float64, 10)
	vecmath.Fill(ones, 3.7)
	dst := make([]float64, 10)
	g.LapMul(dst, ones)
	if vecmath.NormInf(dst) > 1e-12 {
		t.Fatalf("L * const must be 0, got %v", dst)
	}
}

func TestDegreeVector(t *testing.T) {
	g := triangle()
	d := g.DegreeVector()
	for i, v := range d {
		if v != 2 {
			t.Fatalf("degree[%d] = %v", i, v)
		}
	}
	if g.WeightedDegree(0) != 2 {
		t.Fatalf("weighted degree %v", g.WeightedDegree(0))
	}
}

func TestCSRMatchesGraphLapMul(t *testing.T) {
	r := vecmath.NewRNG(4)
	g := New(50, 0)
	for i := 0; i < 200; i++ {
		u := r.Intn(50)
		v := r.Intn(50)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 2))
		}
	}
	c := NewCSR(g)
	x := make([]float64, 50)
	r.FillNormal(x)
	want := make([]float64, 50)
	got := make([]float64, 50)
	g.LapMul(want, x)
	c.LapMul(got, x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("CSR LapMul mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Parallel version agrees too.
	par := make([]float64, 50)
	c.LapMulParallel(par, x, 4)
	for i := range want {
		if math.Abs(want[i]-par[i]) > 1e-9 {
			t.Fatalf("parallel LapMul mismatch at %d", i)
		}
	}
}

func TestCSRCoalescesParallelEdges(t *testing.T) {
	g := New(2, 0)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	c := NewCSR(g)
	if c.NNZ() != 2 { // one entry per direction
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	if c.Weights[0] != 3 {
		t.Fatalf("merged weight %v, want 3", c.Weights[0])
	}
	if c.Degree[0] != 3 || c.Degree[1] != 3 {
		t.Fatalf("degrees %v", c.Degree)
	}
	if ns := c.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Fatalf("neighbors %v", ns)
	}
	if ws := c.NeighborWeights(0); len(ws) != 1 || ws[0] != 3 {
		t.Fatalf("neighbor weights %v", ws)
	}
}

func TestCSRAdjMul(t *testing.T) {
	g := path(3, 1)
	c := NewCSR(g)
	dst := make([]float64, 3)
	c.AdjMul(dst, []float64{1, 2, 3})
	want := []float64{2, 4, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AdjMul = %v", dst)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("count %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("unions should succeed")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union should be a no-op")
	}
	if uf.Count() != 3 {
		t.Fatalf("count %d", uf.Count())
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	uf.Union(1, 3)
	if !uf.Connected(0, 2) {
		t.Fatal("transitivity failed")
	}
}

// Property: after a random sequence of unions, Connected agrees with a
// brute-force labeling.
func TestUnionFindProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := vecmath.NewRNG(seed)
		const n = 30
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for k := 0; k < 40; k++ {
			a, b := r.Intn(n), r.Intn(n)
			uf.Union(a, b)
			// Brute-force: relabel.
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	g := New(6, 0)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	labels, count := Components(g)
	if count != 3 { // {0,1}, {2,3,4}, {5}
		t.Fatalf("count = %d", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[4] || labels[0] == labels[2] || labels[5] == labels[0] {
		t.Fatalf("labels = %v", labels)
	}
	if IsConnected(g) {
		t.Fatal("graph is not connected")
	}
	if !IsConnected(triangle()) {
		t.Fatal("triangle is connected")
	}
	if !IsConnected(New(0, 0)) {
		t.Fatal("empty graph is connected by convention")
	}
}

func TestBFSOrder(t *testing.T) {
	g := path(5, 1)
	order, parent := BFSOrder(g, 2)
	if len(order) != 5 || order[0] != 2 {
		t.Fatalf("order = %v", order)
	}
	if parent[2].To != -1 {
		t.Fatal("root parent sentinel wrong")
	}
	if parent[0].To != 1 || parent[4].To != 3 {
		t.Fatalf("parents = %v", parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3, 0)
	g.AddEdge(0, 1, 1)
	order, parent := BFSOrder(g, 0)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if parent[2].To != -2 {
		t.Fatal("unreachable sentinel wrong")
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5, 1)
	dist, ecc := EccentricityFrom(g, 0)
	if ecc != 4 || dist[4] != 4 {
		t.Fatalf("ecc = %d dist = %v", ecc, dist)
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(6, 0)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 2)
	sub, remap := LargestComponent(g)
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("largest component %v", sub)
	}
	if remap[0] != -1 || remap[5] != -1 || remap[2] == -1 {
		t.Fatalf("remap = %v", remap)
	}
	// Already-connected graphs round-trip unchanged.
	tri := triangle()
	sub2, remap2 := LargestComponent(tri)
	if sub2.NumEdges() != 3 || remap2[2] != 2 {
		t.Fatal("connected graph should be identity-mapped")
	}
}

func TestSummarize(t *testing.T) {
	g := triangle()
	s := Summarize(g)
	if s.Nodes != 3 || s.Edges != 3 || s.MinDegree != 2 || s.MaxDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 || s.MeanDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if z := Summarize(New(0, 0)); z.Nodes != 0 {
		t.Fatal("empty graph stats")
	}
}

func TestOffTreeDensity(t *testing.T) {
	// N=10 sparsifier with 9 edges is exactly a tree: density 0.
	if d := OffTreeDensity(9, 10, 100); d != 0 {
		t.Fatalf("tree density %v", d)
	}
	if d := OffTreeDensity(19, 10, 100); d != 0.1 {
		t.Fatalf("density %v, want 0.1", d)
	}
	if d := OffTreeDensity(5, 10, 100); d != 0 {
		t.Fatal("sub-tree should clamp at 0")
	}
	if d := OffTreeDensity(10, 10, 0); d != 0 {
		t.Fatal("zero original edges should give 0")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4, 1) // degrees 1,2,2,1
	h := DegreeHistogram(g)
	if len(h) != 2 || h[0] != [2]int{1, 2} || h[1] != [2]int{2, 2} {
		t.Fatalf("histogram = %v", h)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle()
	g.edges[0].W = -1 // corrupt directly, bypassing SetWeight
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must catch negative weight")
	}
}
