package graph

import "fmt"

// CSR is a frozen compressed-sparse-row view of a graph's adjacency
// structure, optimized for the repeated matrix-vector products at the heart
// of the Krylov and conjugate-gradient kernels. Parallel edges are merged
// during construction (conductances in parallel add), so each (row, col)
// pair appears at most once.
type CSR struct {
	N       int
	RowPtr  []int     // len N+1
	ColIdx  []int     // len nnz (off-diagonal only)
	Weights []float64 // len nnz, matching ColIdx
	Degree  []float64 // weighted degree per node (Laplacian diagonal)
}

// NewCSR freezes g into CSR form.
func NewCSR(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{N: n, RowPtr: make([]int, n+1), Degree: make([]float64, n)}

	// First pass: count coalesced neighbors per row using a stamp array so
	// we avoid a map. stamp[v] = u+1 when v was already seen in row u.
	stamp := make([]int, n)
	counts := make([]int, n)
	for u := 0; u < n; u++ {
		for _, a := range g.Adj(u) {
			if stamp[a.To] != u+1 {
				stamp[a.To] = u + 1
				counts[u]++
			}
		}
	}
	nnz := 0
	for u := 0; u < n; u++ {
		c.RowPtr[u] = nnz
		nnz += counts[u]
	}
	c.RowPtr[n] = nnz
	c.ColIdx = make([]int, nnz)
	c.Weights = make([]float64, nnz)

	// Second pass: fill, merging parallel edges. slot[v] remembers where v
	// landed within the current row.
	for i := range stamp {
		stamp[i] = 0
	}
	slot := make([]int, n)
	fill := make([]int, n)
	for u := 0; u < n; u++ {
		base := c.RowPtr[u]
		for _, a := range g.Adj(u) {
			w := g.Edge(a.Edge).W
			if stamp[a.To] == u+1 {
				c.Weights[slot[a.To]] += w
			} else {
				stamp[a.To] = u + 1
				pos := base + fill[u]
				fill[u]++
				slot[a.To] = pos
				c.ColIdx[pos] = a.To
				c.Weights[pos] = w
			}
			c.Degree[u] += w
		}
	}
	return c
}

// NNZ returns the number of stored off-diagonal entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// AdjMul computes dst = A x where A is the weighted adjacency matrix.
func (c *CSR) AdjMul(dst, x []float64) {
	if len(x) != c.N || len(dst) != c.N {
		panic(fmt.Sprintf("graph: AdjMul dims %d/%d vs N=%d", len(dst), len(x), c.N))
	}
	for u := 0; u < c.N; u++ {
		var s float64
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s += c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// LapMul computes dst = L x = (D - A) x matrix-free.
func (c *CSR) LapMul(dst, x []float64) {
	if len(x) != c.N || len(dst) != c.N {
		panic(fmt.Sprintf("graph: LapMul dims %d/%d vs N=%d", len(dst), len(x), c.N))
	}
	for u := 0; u < c.N; u++ {
		s := c.Degree[u] * x[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s -= c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// LapMulParallel computes dst = L x using the given number of worker
// goroutines. Rows are partitioned into contiguous chunks, so no
// synchronization beyond the final join is needed. Callers should reuse a
// worker count of runtime.GOMAXPROCS(0) for large graphs and fall back to
// LapMul below ~10k nodes, where goroutine overhead dominates.
func (c *CSR) LapMulParallel(dst, x []float64, workers int) {
	if workers <= 1 || c.N < 4096 {
		c.LapMul(dst, x)
		return
	}
	if len(x) != c.N || len(dst) != c.N {
		panic("graph: LapMulParallel dimension mismatch")
	}
	chunk := (c.N + workers - 1) / workers
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > c.N {
			hi = c.N
		}
		go func(lo, hi int) {
			for u := lo; u < hi; u++ {
				s := c.Degree[u] * x[u]
				for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
					s -= c.Weights[k] * x[c.ColIdx[k]]
				}
				dst[u] = s
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// Neighbors returns the (coalesced) neighbor indices of u as a sub-slice of
// the CSR storage. Callers must not modify it.
func (c *CSR) Neighbors(u int) []int {
	return c.ColIdx[c.RowPtr[u]:c.RowPtr[u+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(u).
func (c *CSR) NeighborWeights(u int) []float64 {
	return c.Weights[c.RowPtr[u]:c.RowPtr[u+1]]
}
