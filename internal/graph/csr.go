package graph

import (
	"fmt"
	"runtime"
	"sort"
)

// CSR is a frozen compressed-sparse-row view of a graph's adjacency
// structure, optimized for the repeated matrix-vector products at the heart
// of the Krylov and conjugate-gradient kernels. Parallel edges are merged
// during construction (conductances in parallel add), so each (row, col)
// pair appears at most once.
type CSR struct {
	N       int
	RowPtr  []int     // len N+1
	ColIdx  []int     // len nnz (off-diagonal only)
	Weights []float64 // len nnz, matching ColIdx
	Degree  []float64 // weighted degree per node (Laplacian diagonal)
}

// NewCSR freezes g into CSR form.
func NewCSR(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{N: n, RowPtr: make([]int, n+1), Degree: make([]float64, n)}

	// First pass: count coalesced neighbors per row using a stamp array so
	// we avoid a map. stamp[v] = u+1 when v was already seen in row u.
	stamp := make([]int, n)
	counts := make([]int, n)
	for u := 0; u < n; u++ {
		for _, a := range g.Adj(u) {
			if stamp[a.To] != u+1 {
				stamp[a.To] = u + 1
				counts[u]++
			}
		}
	}
	nnz := 0
	for u := 0; u < n; u++ {
		c.RowPtr[u] = nnz
		nnz += counts[u]
	}
	c.RowPtr[n] = nnz
	c.ColIdx = make([]int, nnz)
	c.Weights = make([]float64, nnz)

	// Second pass: fill, merging parallel edges. slot[v] remembers where v
	// landed within the current row.
	for i := range stamp {
		stamp[i] = 0
	}
	slot := make([]int, n)
	fill := make([]int, n)
	for u := 0; u < n; u++ {
		base := c.RowPtr[u]
		for _, a := range g.Adj(u) {
			w := g.Edge(a.Edge).W
			if stamp[a.To] == u+1 {
				c.Weights[slot[a.To]] += w
			} else {
				stamp[a.To] = u + 1
				pos := base + fill[u]
				fill[u]++
				slot[a.To] = pos
				c.ColIdx[pos] = a.To
				c.Weights[pos] = w
			}
			c.Degree[u] += w
		}
	}
	return c
}

// NNZ returns the number of stored off-diagonal entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// AdjMul computes dst = A x where A is the weighted adjacency matrix.
func (c *CSR) AdjMul(dst, x []float64) {
	if len(x) != c.N || len(dst) != c.N {
		panic(fmt.Sprintf("graph: AdjMul dims %d/%d vs N=%d", len(dst), len(x), c.N))
	}
	for u := 0; u < c.N; u++ {
		var s float64
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s += c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// LapMul computes dst = L x = (D - A) x matrix-free.
func (c *CSR) LapMul(dst, x []float64) {
	if len(x) != c.N || len(dst) != c.N {
		panic(fmt.Sprintf("graph: LapMul dims %d/%d vs N=%d", len(dst), len(x), c.N))
	}
	for u := 0; u < c.N; u++ {
		s := c.Degree[u] * x[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s -= c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// SpMVWork is the abstract cost of one Laplacian product: one multiply-add
// per stored entry plus a diagonal term and a store per row.
func (c *CSR) SpMVWork() int { return len(c.ColIdx) + 2*c.N }

// MaxMulti is the widest vector block the multi-vector kernels accept. It
// bounds the per-row accumulator array LapMulMulti keeps in registers, and
// through sparse.MaxBlockWidth it caps how many right-hand sides one blocked
// solve iterates in lockstep.
const MaxMulti = 16

// LapMulMulti computes dst[j] = L x[j] for every column j in one traversal
// of the CSR structure. A single Laplacian product is dominated by streaming
// RowPtr/ColIdx/Weights; applying the operator to a block of b vectors reads
// that structure once instead of b times, which is the whole point of the
// blocked multi-RHS solvers. Per-column accumulation order matches LapMul
// exactly (diagonal term first, then neighbors in storage order), so each
// column of the result is bit-identical to a serial LapMul of that column.
//
// len(x) must equal len(dst), be at most MaxMulti, and every column must
// have length N. Columns must not alias each other or dst.
func (c *CSR) LapMulMulti(dst, x [][]float64) {
	b := len(x)
	if len(dst) != b {
		panic(fmt.Sprintf("graph: LapMulMulti block widths %d/%d", len(dst), b))
	}
	if b == 0 {
		return
	}
	if b > MaxMulti {
		panic(fmt.Sprintf("graph: LapMulMulti width %d exceeds MaxMulti=%d", b, MaxMulti))
	}
	if b == 1 {
		c.LapMul(dst[0], x[0])
		return
	}
	for j := 0; j < b; j++ {
		if len(x[j]) != c.N || len(dst[j]) != c.N {
			panic(fmt.Sprintf("graph: LapMulMulti column %d dims %d/%d vs N=%d", j, len(dst[j]), len(x[j]), c.N))
		}
	}
	c.LapMulMultiRange(dst, x, 0, c.N)
}

// LapMulMultiRange applies the blocked Laplacian product to rows [lo, hi).
// It is the shared body of LapMulMulti and the pooled multi-SpMV (each
// kernel-pool worker runs it over its partition range). Columns are
// processed in width-4 / width-2 / width-1 groups by specialized unrolled
// kernels: hoisting the column slices into locals keeps the per-column
// accumulators in registers and eliminates the slice-header reload a
// generic [][]float64 inner loop pays per nonzero per column — the
// difference between ~1.1x and >2x over independent products. Callers must
// have validated dimensions.
func (c *CSR) LapMulMultiRange(dst, x [][]float64, lo, hi int) {
	j := 0
	for ; j+4 <= len(x); j += 4 {
		c.lapMulMulti4(dst[j], dst[j+1], dst[j+2], dst[j+3], x[j], x[j+1], x[j+2], x[j+3], lo, hi)
	}
	if j+2 <= len(x) {
		c.lapMulMulti2(dst[j], dst[j+1], x[j], x[j+1], lo, hi)
		j += 2
	}
	if j < len(x) {
		c.lapMulRange(dst[j], x[j], lo, hi)
	}
}

// lapMulRange is LapMul restricted to rows [lo, hi).
func (c *CSR) lapMulRange(dst, x []float64, lo, hi int) {
	for u := lo; u < hi; u++ {
		s := c.Degree[u] * x[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			s -= c.Weights[k] * x[c.ColIdx[k]]
		}
		dst[u] = s
	}
}

// lapMulMulti2 computes two Laplacian products in one traversal of rows
// [lo, hi). Per-column accumulation order matches LapMul exactly.
func (c *CSR) lapMulMulti2(d0, d1, x0, x1 []float64, lo, hi int) {
	for u := lo; u < hi; u++ {
		deg := c.Degree[u]
		s0 := deg * x0[u]
		s1 := deg * x1[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			w, ci := c.Weights[k], c.ColIdx[k]
			s0 -= w * x0[ci]
			s1 -= w * x1[ci]
		}
		d0[u] = s0
		d1[u] = s1
	}
}

// lapMulMulti4 computes four Laplacian products in one traversal of rows
// [lo, hi). Per-column accumulation order matches LapMul exactly.
func (c *CSR) lapMulMulti4(d0, d1, d2, d3, x0, x1, x2, x3 []float64, lo, hi int) {
	for u := lo; u < hi; u++ {
		deg := c.Degree[u]
		s0 := deg * x0[u]
		s1 := deg * x1[u]
		s2 := deg * x2[u]
		s3 := deg * x3[u]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			w, ci := c.Weights[k], c.ColIdx[k]
			s0 -= w * x0[ci]
			s1 -= w * x1[ci]
			s2 -= w * x2[ci]
			s3 -= w * x3[ci]
		}
		d0[u] = s0
		d1[u] = s1
		d2[u] = s2
		d3[u] = s3
	}
}

// spawnCutover is the SpMVWork below which spawning goroutines costs more
// than the product itself (measured on the repo's bench families; goroutine
// start plus join is ~2-4µs, roughly 10-20k multiply-adds). The persistent
// pool in internal/kernel has its own, much lower cutover.
const spawnCutover = 1 << 15

// clampSpMVWorkers bounds a requested SpMV worker count: more workers than
// GOMAXPROCS cannot run concurrently, more workers than rows get empty
// partitions, and sub-cutover products run serially. The result is the
// number of goroutines actually worth spawning (1 means serial).
func clampSpMVWorkers(workers, rows, work int) int {
	if workers > rows {
		workers = rows
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers < 1 || work < spawnCutover {
		return 1
	}
	return workers
}

// NNZPartition splits the rows into the given number of contiguous chunks
// of near-equal work (nonzeros plus a constant per row), returning chunk
// boundaries of length chunks+1 with part[0] = 0 and part[chunks] = N.
// Count-based row partitions are pathological on power-law graphs, where a
// few hub rows hold a large share of the nonzeros; balancing on the RowPtr
// prefix (plus a per-row constant so empty-row ranges still split) keeps
// every chunk's cost within one row of even. Each boundary is a binary
// search over RowPtr, so freezing a partition costs O(chunks · log N).
func (c *CSR) NNZPartition(chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	if chunks > c.N && c.N > 0 {
		chunks = c.N
	}
	part := make([]int, chunks+1)
	total := c.SpMVWork()
	for i := 1; i < chunks; i++ {
		target := total * i / chunks
		// Smallest u with RowPtr[u] + 2u >= target; monotone in u.
		part[i] = sort.Search(c.N, func(u int) bool {
			return c.RowPtr[u]+2*u >= target
		})
	}
	part[chunks] = c.N
	// Boundaries are individually monotone by construction; enforce it
	// anyway so a degenerate search result can never cross.
	for i := 1; i <= chunks; i++ {
		if part[i] < part[i-1] {
			part[i] = part[i-1]
		}
	}
	return part
}

// LapMulParallel computes dst = L x using up to the given number of worker
// goroutines over an nnz-balanced row partition. Rows are written by
// exactly one worker each and per-row accumulation order matches LapMul, so
// the result is bit-identical to the serial product for every worker count.
// The count is clamped to GOMAXPROCS and the row count, and sub-cutover
// products run serially (see clampSpMVWorkers).
//
// This is the legacy spawn-per-call path: it allocates the partition and
// the join channel on every call. Hot paths go through a frozen
// sparse.LapOperator, which dispatches into a persistent internal/kernel
// pool with a partition precomputed at freeze time instead.
func (c *CSR) LapMulParallel(dst, x []float64, workers int) {
	if len(x) != c.N || len(dst) != c.N {
		panic("graph: LapMulParallel dimension mismatch")
	}
	workers = clampSpMVWorkers(workers, c.N, c.SpMVWork())
	if workers == 1 {
		c.LapMul(dst, x)
		return
	}
	part := c.NNZPartition(workers)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			for u := lo; u < hi; u++ {
				s := c.Degree[u] * x[u]
				for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
					s -= c.Weights[k] * x[c.ColIdx[k]]
				}
				dst[u] = s
			}
			done <- struct{}{}
		}(part[w], part[w+1])
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// Neighbors returns the (coalesced) neighbor indices of u as a sub-slice of
// the CSR storage. Callers must not modify it.
func (c *CSR) Neighbors(u int) []int {
	return c.ColIdx[c.RowPtr[u]:c.RowPtr[u+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(u).
func (c *CSR) NeighborWeights(u int) []float64 {
	return c.Weights[c.RowPtr[u]:c.RowPtr[u+1]]
}
