package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph's size and degree distribution. The sparsifier
// experiment tables are assembled from these fields.
type Stats struct {
	Nodes      int
	Edges      int
	MinDegree  int
	MaxDegree  int
	MeanDegree float64
	MinWeight  float64
	MaxWeight  float64
	Components int
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	for u := 0; u < s.Nodes; u++ {
		d := g.Degree(u)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.MeanDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	if s.Edges > 0 {
		s.MinWeight = g.Edge(0).W
		s.MaxWeight = g.Edge(0).W
		for _, e := range g.Edges() {
			if e.W < s.MinWeight {
				s.MinWeight = e.W
			}
			if e.W > s.MaxWeight {
				s.MaxWeight = e.W
			}
		}
	}
	_, s.Components = Components(g)
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("N=%d E=%d deg[%d..%d] mean=%.2f w[%.3g..%.3g] comp=%d",
		s.Nodes, s.Edges, s.MinDegree, s.MaxDegree, s.MeanDegree,
		s.MinWeight, s.MaxWeight, s.Components)
}

// OffTreeDensity returns the density measure used throughout the paper's
// tables: the number of sparsifier edges beyond a spanning tree, as a
// fraction of the ORIGINAL graph's edge count.
//
//	D = (|E_H| - (N-1)) / |E_G|
//
// sparsifierEdges is |E_H|, nodes is N, originalEdges is |E_G|. Values are
// clamped at 0 for sub-tree inputs (disconnected intermediate states).
func OffTreeDensity(sparsifierEdges, nodes, originalEdges int) float64 {
	off := sparsifierEdges - (nodes - 1)
	if off < 0 {
		off = 0
	}
	if originalEdges == 0 {
		return 0
	}
	return float64(off) / float64(originalEdges)
}

// DegreeHistogram returns sorted (degree, count) pairs for diagnostics.
func DegreeHistogram(g *Graph) [][2]int {
	counts := map[int]int{}
	for u := 0; u < g.NumNodes(); u++ {
		counts[g.Degree(u)]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
