package graph

import (
	"fmt"
	"sort"
)

// SELL-C-σ (sliced ELLPACK): the cache-aware sparse format behind the
// tier-2 kernel engine. The CSR Laplacian product is bound by its memory
// access pattern — per row it streams RowPtr, then a variable-length burst
// of (ColIdx, Weights) pairs, with a branch misprediction tax wherever row
// lengths vary. SELL-C-σ reorganizes the same nonzeros for regular access:
//
//   - rows are sorted by descending length inside windows of σ rows (the
//     sort window bounds how far a row can move from its neighbors, keeping
//     x-vector locality),
//   - sorted rows are grouped into chunks of C = SellC rows,
//   - each chunk stores its rows' entries column-major, padded to the
//     chunk's longest row: slot k of lanes 0..C-1 are adjacent in memory.
//
// One pass over a chunk advances C independent row accumulators with unit-
// stride loads of Cols/Vals — the access pattern SIMD units and hardware
// prefetchers want — and the σ-window sort keeps the padding (the price of
// the regular layout) small on skewed degree distributions.
//
// Bit-identity contract: per original row, the accumulation order is
// exactly CSR's — the diagonal term first, then the row's entries in CSR
// storage order. Entries keep their per-row order in the slots, the kernels
// walk slots in ascending order for every lane, and padded slots are NEVER
// read (the uniform loop stops at the chunk's minimum real row length and
// per-lane remainder loops finish each longer row), so LapMul/AdjMul over
// SELL are bit-for-bit equal to their serial CSR counterparts — the same
// guarantee the pooled CSR kernels give, extended to the sliced layout.
// (Executing padded slots would not be bit-neutral: 0*x[j] carries x[j]'s
// sign, and subtracting a -0 flips a -0 accumulator to +0.)
type SELL struct {
	N     int
	Sigma int // row-sort window (rows)

	ChunkPtr []int   // len NumChunks()+1: slot offset of each chunk's storage
	ChunkLen []int32 // slots per lane in each chunk (longest row)
	ChunkMin []int32 // shortest real row in each chunk (uniform-loop bound)
	Cols     []int32 // padded column indices, column-major per chunk
	Vals     []float64
	Perm     []int32   // sorted row -> original row id
	RowLen   []int32   // real entries per sorted row
	Degree   []float64 // Laplacian diagonal, shared with the source CSR
}

// SellC is the chunk height C: the number of rows advanced per slot step,
// matched to the 4-lane AVX2 float64 vector width the vecmath kernels
// target. Chunks are the pooled kernels' work granule — partitions split on
// chunk boundaries, never inside one.
const SellC = 4

// DefaultSellSigma is the default row-sort window. One window spans many
// chunks (64 at C=4), enough reordering freedom to absorb mesh-like and
// moderately skewed degree variance, while bounding how far the sort can
// scatter x-vector access.
const DefaultSellSigma = 256

// sellOrder computes the σ-window row permutation (descending row length,
// stable on original id within each window) and the per-chunk slot counts.
// Shared by SellFootprint (which needs sizes before anything is allocated)
// and NewSELL.
func sellOrder(c *CSR, sigma int) (order []int, chunkLen []int32, slots int) {
	n := c.N
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	rl := func(u int) int { return c.RowPtr[u+1] - c.RowPtr[u] }
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		win := order[w0:w1]
		sort.SliceStable(win, func(a, b int) bool { return rl(win[a]) > rl(win[b]) })
	}
	chunks := (n + SellC - 1) / SellC
	chunkLen = make([]int32, chunks)
	for ch := 0; ch < chunks; ch++ {
		maxLen := 0
		for r := ch * SellC; r < (ch+1)*SellC && r < n; r++ {
			if l := rl(order[r]); l > maxLen {
				maxLen = l
			}
		}
		chunkLen[ch] = int32(maxLen)
		slots += SellC * maxLen
	}
	return order, chunkLen, slots
}

// SellFootprint predicts, without building anything, the arena bytes a
// SELL view of c would occupy and its padding ratio (padded slots that hold
// no real entry, as a fraction of all slots). The freeze path uses the
// ratio for format selection and the bytes for exact arena sizing.
func SellFootprint(c *CSR, sigma int) (bytes int, padRatio float64) {
	if sigma < 1 {
		sigma = DefaultSellSigma
	}
	_, chunkLen, slots := sellOrder(c, sigma)
	chunks := len(chunkLen)
	// ChunkPtr + ChunkLen + ChunkMin + Cols + Vals + Perm + RowLen.
	bytes = 8*(chunks+1) + 4*chunks + 4*chunks + 4*slots + 8*slots + 4*c.N + 4*c.N
	if slots > 0 {
		padRatio = float64(slots-c.NNZ()) / float64(slots)
	}
	return bytes, padRatio
}

// NewSELL freezes a SELL-C-σ view of c. sigma < 1 selects
// DefaultSellSigma; alloc == nil builds on the heap (the freeze path passes
// a kernel.Arena so the whole operator lands in one block). The CSR stays
// the structural source of truth (Neighbors, partitions, degree); the SELL
// view shares its Degree slice and copies the off-diagonal entries into the
// sliced layout.
func NewSELL(c *CSR, sigma int, alloc Alloc) *SELL {
	if sigma < 1 {
		sigma = DefaultSellSigma
	}
	if c.N > 0 && c.N > (1<<31)-1 {
		panic(fmt.Sprintf("graph: SELL row count %d exceeds int32", c.N))
	}
	order, chunkLen, slots := sellOrder(c, sigma)
	n := c.N
	chunks := len(chunkLen)
	s := &SELL{
		N:        n,
		Sigma:    sigma,
		ChunkPtr: allocInt(alloc, chunks+1),
		ChunkLen: chunkLen,
		ChunkMin: allocInt32(alloc, chunks),
		Cols:     allocInt32(alloc, slots),
		Vals:     allocFloat64(alloc, slots),
		Perm:     allocInt32(alloc, n),
		RowLen:   allocInt32(alloc, n),
		Degree:   c.Degree,
	}
	if alloc != nil {
		// chunkLen came from the heap-side sizing pass; re-home it.
		s.ChunkLen = allocInt32(alloc, chunks)
		copy(s.ChunkLen, chunkLen)
	}
	off := 0
	for ch := 0; ch < chunks; ch++ {
		s.ChunkPtr[ch] = off
		off += SellC * int(s.ChunkLen[ch])
	}
	s.ChunkPtr[chunks] = off

	for r, u := range order {
		s.Perm[r] = int32(u)
		s.RowLen[r] = int32(c.RowPtr[u+1] - c.RowPtr[u])
	}
	for ch := 0; ch < chunks; ch++ {
		base := s.ChunkPtr[ch]
		r0 := ch * SellC
		minLen := int32(0)
		for lane := 0; lane < SellC && r0+lane < n; lane++ {
			r := r0 + lane
			u := int(s.Perm[r])
			row := c.RowPtr[u]
			for k := 0; k < int(s.RowLen[r]); k++ {
				idx := base + k*SellC + lane
				s.Cols[idx] = int32(c.ColIdx[row+k])
				s.Vals[idx] = c.Weights[row+k]
			}
			// Padded slots stay (0, 0): in-bounds but never read.
			if lane == 0 || s.RowLen[r] < minLen {
				minLen = s.RowLen[r]
			}
		}
		s.ChunkMin[ch] = minLen
	}
	return s
}

// NumChunks returns the number of C-row chunks.
func (s *SELL) NumChunks() int { return len(s.ChunkLen) }

// NNZ returns the number of real (non-padding) stored entries.
func (s *SELL) NNZ() int {
	var t int
	for _, l := range s.RowLen {
		t += int(l)
	}
	return t
}

// Slots returns the total padded storage slots.
func (s *SELL) Slots() int { return s.ChunkPtr[s.NumChunks()] }

// PaddingRatio reports the fraction of slots holding no real entry.
func (s *SELL) PaddingRatio() float64 {
	if s.Slots() == 0 {
		return 0
	}
	return float64(s.Slots()-s.NNZ()) / float64(s.Slots())
}

// SpMVWork is the abstract cost of one product over the sliced layout:
// every padded slot is streamed (even though padding is not accumulated)
// plus a diagonal term and store per row. Comparable with CSR.SpMVWork for
// the kernel pool's fork cutover.
func (s *SELL) SpMVWork() int { return s.Slots() + 2*s.N }

// NNZChunkPartition splits the chunks into the given number of contiguous
// spans of near-equal work (slots plus a constant per row), returning chunk
// boundaries of length parts+1 with part[0] = 0 and part[parts] =
// NumChunks(). The pooled SELL kernels dispatch over these spans: chunk-
// granular, so no two workers ever share a chunk's lanes — each original
// row is written by exactly one worker, preserving bit-identity for every
// width (the same argument as CSR.NNZPartition, lifted from rows to
// chunks).
func (s *SELL) NNZChunkPartition(parts int) []int {
	chunks := s.NumChunks()
	if parts < 1 {
		parts = 1
	}
	if parts > chunks && chunks > 0 {
		parts = chunks
	}
	part := make([]int, parts+1)
	total := s.SpMVWork()
	for i := 1; i < parts; i++ {
		target := total * i / parts
		part[i] = sort.Search(chunks, func(ch int) bool {
			return s.ChunkPtr[ch]+2*SellC*ch >= target
		})
	}
	part[parts] = chunks
	for i := 1; i <= parts; i++ {
		if part[i] < part[i-1] {
			part[i] = part[i-1]
		}
	}
	return part
}

func (s *SELL) checkDims(kernel string, dst, x []float64) {
	if len(x) != s.N || len(dst) != s.N {
		panic(fmt.Sprintf("graph: SELL %s dims %d/%d vs N=%d", kernel, len(dst), len(x), s.N))
	}
}

// LapMul computes dst = (D - A) x over the sliced layout; bit-identical to
// CSR.LapMul.
func (s *SELL) LapMul(dst, x []float64) {
	s.checkDims("LapMul", dst, x)
	s.LapMulChunks(dst, x, 0, s.NumChunks())
}

// AdjMul computes dst = A x over the sliced layout; bit-identical to
// CSR.AdjMul.
func (s *SELL) AdjMul(dst, x []float64) {
	s.checkDims("AdjMul", dst, x)
	s.AdjMulChunks(dst, x, 0, s.NumChunks())
}

// lapTail finishes lane's row from slot `from` to its real length: the
// per-lane remainder beyond the chunk's uniform minimum.
func (s *SELL) lapTail(acc float64, x []float64, base, from, to, lane int) float64 {
	for k := from; k < to; k++ {
		idx := base + k*SellC + lane
		acc -= s.Vals[idx] * x[s.Cols[idx]]
	}
	return acc
}

func (s *SELL) adjTail(acc float64, x []float64, base, from, to, lane int) float64 {
	for k := from; k < to; k++ {
		idx := base + k*SellC + lane
		acc += s.Vals[idx] * x[s.Cols[idx]]
	}
	return acc
}

// LapMulChunks applies the Laplacian product for chunks [c0, c1) — the
// shared body of LapMul and the pooled chunk-partitioned kernel. The
// uniform loop advances all C lanes in lockstep with unit-stride structure
// loads up to the chunk's minimum row length; σ-sorting makes the per-lane
// remainders short. Callers must have validated dimensions.
func (s *SELL) LapMulChunks(dst, x []float64, c0, c1 int) {
	for ch := c0; ch < c1; ch++ {
		base := s.ChunkPtr[ch]
		r0 := ch * SellC
		if r0+SellC <= s.N {
			u0, u1, u2, u3 := s.Perm[r0], s.Perm[r0+1], s.Perm[r0+2], s.Perm[r0+3]
			a0 := s.Degree[u0] * x[u0]
			a1 := s.Degree[u1] * x[u1]
			a2 := s.Degree[u2] * x[u2]
			a3 := s.Degree[u3] * x[u3]
			m := int(s.ChunkMin[ch])
			off := base
			for k := 0; k < m; k++ {
				a0 -= s.Vals[off] * x[s.Cols[off]]
				a1 -= s.Vals[off+1] * x[s.Cols[off+1]]
				a2 -= s.Vals[off+2] * x[s.Cols[off+2]]
				a3 -= s.Vals[off+3] * x[s.Cols[off+3]]
				off += SellC
			}
			if int(s.ChunkLen[ch]) > m {
				a0 = s.lapTail(a0, x, base, m, int(s.RowLen[r0]), 0)
				a1 = s.lapTail(a1, x, base, m, int(s.RowLen[r0+1]), 1)
				a2 = s.lapTail(a2, x, base, m, int(s.RowLen[r0+2]), 2)
				a3 = s.lapTail(a3, x, base, m, int(s.RowLen[r0+3]), 3)
			}
			dst[u0] = a0
			dst[u1] = a1
			dst[u2] = a2
			dst[u3] = a3
			continue
		}
		// Partial tail chunk: fewer than C real rows; per-lane scalar walk.
		for lane := 0; r0+lane < s.N; lane++ {
			r := r0 + lane
			u := s.Perm[r]
			dst[u] = s.lapTail(s.Degree[u]*x[u], x, base, 0, int(s.RowLen[r]), lane)
		}
	}
}

// AdjMulChunks is LapMulChunks for the adjacency product dst = A x.
func (s *SELL) AdjMulChunks(dst, x []float64, c0, c1 int) {
	for ch := c0; ch < c1; ch++ {
		base := s.ChunkPtr[ch]
		r0 := ch * SellC
		if r0+SellC <= s.N {
			u0, u1, u2, u3 := s.Perm[r0], s.Perm[r0+1], s.Perm[r0+2], s.Perm[r0+3]
			var a0, a1, a2, a3 float64
			m := int(s.ChunkMin[ch])
			off := base
			for k := 0; k < m; k++ {
				a0 += s.Vals[off] * x[s.Cols[off]]
				a1 += s.Vals[off+1] * x[s.Cols[off+1]]
				a2 += s.Vals[off+2] * x[s.Cols[off+2]]
				a3 += s.Vals[off+3] * x[s.Cols[off+3]]
				off += SellC
			}
			if int(s.ChunkLen[ch]) > m {
				a0 = s.adjTail(a0, x, base, m, int(s.RowLen[r0]), 0)
				a1 = s.adjTail(a1, x, base, m, int(s.RowLen[r0+1]), 1)
				a2 = s.adjTail(a2, x, base, m, int(s.RowLen[r0+2]), 2)
				a3 = s.adjTail(a3, x, base, m, int(s.RowLen[r0+3]), 3)
			}
			dst[u0] = a0
			dst[u1] = a1
			dst[u2] = a2
			dst[u3] = a3
			continue
		}
		for lane := 0; r0+lane < s.N; lane++ {
			r := r0 + lane
			dst[s.Perm[r]] = s.adjTail(0, x, base, 0, int(s.RowLen[r]), lane)
		}
	}
}

// lapMulChunkOne applies one chunk's Laplacian product to a single column —
// the odd-column body of the multi kernel.
func (s *SELL) lapMulChunkOne(ch int, dst, x []float64) {
	s.LapMulChunks(dst, x, ch, ch+1)
}

// lapMulChunk2 applies one chunk's Laplacian product to two columns in one
// structure pass: chunk structure (Cols/Vals) is read once for both
// columns, the blocked-solver amortization lifted onto the sliced layout.
// Per-lane, per-column accumulation order matches lapMulChunkOne exactly.
func (s *SELL) lapMulChunk2(ch int, d0, d1, x0, x1 []float64) {
	base := s.ChunkPtr[ch]
	r0 := ch * SellC
	if r0+SellC <= s.N {
		u0, u1, u2, u3 := s.Perm[r0], s.Perm[r0+1], s.Perm[r0+2], s.Perm[r0+3]
		deg0, deg1, deg2, deg3 := s.Degree[u0], s.Degree[u1], s.Degree[u2], s.Degree[u3]
		p0 := deg0 * x0[u0]
		p1 := deg1 * x0[u1]
		p2 := deg2 * x0[u2]
		p3 := deg3 * x0[u3]
		q0 := deg0 * x1[u0]
		q1 := deg1 * x1[u1]
		q2 := deg2 * x1[u2]
		q3 := deg3 * x1[u3]
		m := int(s.ChunkMin[ch])
		off := base
		for k := 0; k < m; k++ {
			w0, c0 := s.Vals[off], s.Cols[off]
			w1, c1 := s.Vals[off+1], s.Cols[off+1]
			w2, c2 := s.Vals[off+2], s.Cols[off+2]
			w3, c3 := s.Vals[off+3], s.Cols[off+3]
			p0 -= w0 * x0[c0]
			q0 -= w0 * x1[c0]
			p1 -= w1 * x0[c1]
			q1 -= w1 * x1[c1]
			p2 -= w2 * x0[c2]
			q2 -= w2 * x1[c2]
			p3 -= w3 * x0[c3]
			q3 -= w3 * x1[c3]
			off += SellC
		}
		if int(s.ChunkLen[ch]) > m {
			p0 = s.lapTail(p0, x0, base, m, int(s.RowLen[r0]), 0)
			q0 = s.lapTail(q0, x1, base, m, int(s.RowLen[r0]), 0)
			p1 = s.lapTail(p1, x0, base, m, int(s.RowLen[r0+1]), 1)
			q1 = s.lapTail(q1, x1, base, m, int(s.RowLen[r0+1]), 1)
			p2 = s.lapTail(p2, x0, base, m, int(s.RowLen[r0+2]), 2)
			q2 = s.lapTail(q2, x1, base, m, int(s.RowLen[r0+2]), 2)
			p3 = s.lapTail(p3, x0, base, m, int(s.RowLen[r0+3]), 3)
			q3 = s.lapTail(q3, x1, base, m, int(s.RowLen[r0+3]), 3)
		}
		d0[u0], d1[u0] = p0, q0
		d0[u1], d1[u1] = p1, q1
		d0[u2], d1[u2] = p2, q2
		d0[u3], d1[u3] = p3, q3
		return
	}
	for lane := 0; r0+lane < s.N; lane++ {
		r := r0 + lane
		u := s.Perm[r]
		d0[u] = s.lapTail(s.Degree[u]*x0[u], x0, base, 0, int(s.RowLen[r]), lane)
		d1[u] = s.lapTail(s.Degree[u]*x1[u], x1, base, 0, int(s.RowLen[r]), lane)
	}
}

// LapMulMulti computes dst[j] = L x[j] for every column over the sliced
// layout, reading each chunk's structure once per column pair. Column j is
// bit-identical to a serial CSR LapMul of that column alone; widths follow
// the same MaxMulti bound as CSR.LapMulMulti.
func (s *SELL) LapMulMulti(dst, x [][]float64) {
	b := len(x)
	if len(dst) != b {
		panic(fmt.Sprintf("graph: SELL LapMulMulti block widths %d/%d", len(dst), b))
	}
	if b == 0 {
		return
	}
	if b > MaxMulti {
		panic(fmt.Sprintf("graph: SELL LapMulMulti width %d exceeds MaxMulti=%d", b, MaxMulti))
	}
	for j := 0; j < b; j++ {
		if len(x[j]) != s.N || len(dst[j]) != s.N {
			panic(fmt.Sprintf("graph: SELL LapMulMulti column %d dims %d/%d vs N=%d", j, len(dst[j]), len(x[j]), s.N))
		}
	}
	s.LapMulMultiChunks(dst, x, 0, s.NumChunks())
}

// LapMulMultiChunks applies the blocked Laplacian product to chunks
// [c0, c1) — the shared body of LapMulMulti and the pooled multi kernel.
// Chunks are the outer loop so a chunk's structure stays cache-resident
// across the whole column block. Callers must have validated dimensions.
func (s *SELL) LapMulMultiChunks(dst, x [][]float64, c0, c1 int) {
	b := len(x)
	for ch := c0; ch < c1; ch++ {
		j := 0
		for ; j+2 <= b; j += 2 {
			s.lapMulChunk2(ch, dst[j], dst[j+1], x[j], x[j+1])
		}
		if j < b {
			s.lapMulChunkOne(ch, dst[j], x[j])
		}
	}
}
