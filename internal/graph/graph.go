// Package graph implements the weighted undirected graph substrate used by
// every other package in the repository: a mutable edge-list representation
// with incremental adjacency, a frozen CSR view for matrix-free Laplacian
// kernels, union-find, traversals/connectivity, a plain-text interchange
// format, and summary statistics.
//
// Node identifiers are dense integers 0..N-1. Parallel edges are permitted
// in the mutable representation (the Laplacian treats them as conductances
// in parallel, i.e. weights add); self-loops are rejected because they do
// not affect Laplacian quadratic forms.
package graph

import (
	"fmt"
	"math"
)

// Edge is a weighted undirected edge between nodes U and V.
type Edge struct {
	U, V int
	W    float64
}

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Key packs the canonical endpoint pair into a single comparable value.
// It is usable as a map key for edge-identity checks.
func (e Edge) Key() uint64 {
	c := e.Canon()
	return uint64(c.U)<<32 | uint64(uint32(c.V))
}

// KeyOf returns the canonical pair key for endpoints (u, v).
func KeyOf(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// Graph is a mutable weighted undirected multigraph over nodes 0..N-1.
//
// The zero value is an empty graph with no nodes; use New to preallocate.
// Edges are stored in insertion order and never reordered, so edge indices
// returned by AddEdge remain stable for the life of the graph — the
// sparsifier update machinery relies on that stability to address edges.
type Graph struct {
	n     int
	edges []Edge
	// adj[u] lists (neighbor, edge index) pairs. Kept in sync by AddEdge.
	adj [][]Arc
	// totalWeight caches the sum of all edge weights.
	totalWeight float64
	// shared marks the edge and adjacency storage as shared with at least
	// one copy-on-write snapshot; the next mutation copies before writing.
	shared bool
}

// Arc is one directed half of an undirected edge as seen from a node's
// adjacency list.
type Arc struct {
	To   int // neighbor node
	Edge int // index into Edges()
}

// New returns an empty graph with n nodes and capacity hint edgeCap.
func New(n int, edgeCap int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:     n,
		edges: make([]Edge, 0, edgeCap),
		adj:   make([][]Arc, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges (parallel edges counted separately).
func (g *Graph) NumEdges() int { return len(g.edges) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// Edges returns the edge slice. Callers must not mutate it directly;
// use SetWeight/ScaleWeight so cached aggregates stay consistent.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Adj returns the adjacency list of node u: one Arc per incident edge.
func (g *Graph) Adj(u int) []Arc { return g.adj[u] }

// Degree returns the number of incident edges of u (parallel edges counted).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the sum of the weights of edges incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	var s float64
	for _, a := range g.adj[u] {
		s += g.edges[a.Edge].W
	}
	return s
}

// Snapshot returns an immutable-by-convention copy-on-write view of g in
// O(1): both graphs share the edge and adjacency storage until either side
// mutates, at which point the mutating side deep-copies its storage first
// (one O(N+E) copy per snapshot generation, amortized over the whole write
// batch that follows). Snapshots are safe to read from any number of
// goroutines while the live graph keeps mutating, which is what the
// concurrent service layer relies on for snapshot-isolated queries.
func (g *Graph) Snapshot() *Graph {
	// Only write the flag when it actually flips: snapshots of an
	// already-shared graph (e.g. handing a published service snapshot to an
	// API caller) may be taken from many goroutines at once, and skipping
	// the redundant store keeps that path write-free.
	if !g.shared {
		g.shared = true
	}
	return &Graph{
		n:           g.n,
		edges:       g.edges,
		adj:         g.adj,
		totalWeight: g.totalWeight,
		shared:      true,
	}
}

// unshare deep-copies storage shared with snapshots so an impending
// mutation cannot be observed by concurrent snapshot readers.
func (g *Graph) unshare() {
	if !g.shared {
		return
	}
	// Leave growth headroom: unshare is usually triggered by the first
	// AddEdge of a write batch, and an exact-capacity copy would reallocate
	// again on the very next append.
	g.edges = append(make([]Edge, 0, len(g.edges)+len(g.edges)/8+8), g.edges...)
	adj := make([][]Arc, len(g.adj))
	for u := range g.adj {
		adj[u] = append([]Arc(nil), g.adj[u]...)
	}
	g.adj = adj
	g.shared = false
}

// AddNode appends a new isolated node and returns its identifier.
func (g *Graph) AddNode() int {
	g.unshare()
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts the undirected edge (u, v) with weight w and returns its
// stable edge index. It panics on out-of-range endpoints, self-loops, or
// non-positive / non-finite weights: every algorithm in this repository
// assumes a positive conductance model.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d rejected", u))
	}
	if !(w > 0) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: edge weight %v must be positive and finite", w))
	}
	g.unshare()
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: idx})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: idx})
	g.totalWeight += w
	return idx
}

// SetWeight replaces the weight of edge i.
func (g *Graph) SetWeight(i int, w float64) {
	if !(w > 0) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: edge weight %v must be positive and finite", w))
	}
	g.unshare()
	g.totalWeight += w - g.edges[i].W
	g.edges[i].W = w
}

// AddWeight increments the weight of edge i by delta (merging a parallel
// edge into an existing one). The resulting weight must stay positive.
func (g *Graph) AddWeight(i int, delta float64) {
	g.SetWeight(i, g.edges[i].W+delta)
}

// ScaleWeight multiplies the weight of edge i by factor.
func (g *Graph) ScaleWeight(i int, factor float64) {
	g.SetWeight(i, g.edges[i].W*factor)
}

// FindEdge returns the index of some edge between u and v and true, or
// (-1, false) if none exists. It scans the shorter adjacency list, so the
// cost is O(min(deg(u), deg(v))).
func (g *Graph) FindEdge(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return -1, false
	}
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, arc := range g.adj[a] {
		if arc.To == b {
			return arc.Edge, true
		}
	}
	return -1, false
}

// HasEdge reports whether at least one edge connects u and v.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.FindEdge(u, v)
	return ok
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n, len(g.edges))
	c.edges = append(c.edges, g.edges...)
	for u := range g.adj {
		c.adj[u] = append([]Arc(nil), g.adj[u]...)
	}
	c.totalWeight = g.totalWeight
	return c
}

// Subgraph returns a new graph over the same node set containing exactly
// the edges whose indices appear in keep (in that order).
func (g *Graph) Subgraph(keep []int) *Graph {
	s := New(g.n, len(keep))
	for _, i := range keep {
		e := g.edges[i]
		s.AddEdge(e.U, e.V, e.W)
	}
	return s
}

// Coalesce returns a simple graph in which parallel edges have been merged
// by summing their weights. Edge order follows first occurrence.
func (g *Graph) Coalesce() *Graph {
	s := New(g.n, len(g.edges))
	at := make(map[uint64]int, len(g.edges))
	for _, e := range g.edges {
		k := e.Key()
		if i, ok := at[k]; ok {
			s.AddWeight(i, e.W)
			continue
		}
		at[k] = s.AddEdge(e.U, e.V, e.W)
	}
	return s
}

// QuadraticForm evaluates x' L x = sum_e w_e (x_u - x_v)^2 without forming
// the Laplacian. It panics if len(x) != NumNodes().
func (g *Graph) QuadraticForm(x []float64) float64 {
	if len(x) != g.n {
		panic(fmt.Sprintf("graph: QuadraticForm length %d != %d nodes", len(x), g.n))
	}
	var s float64
	for _, e := range g.edges {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	return s
}

// LapMul computes y = L x matrix-free, where L = D - A is the weighted
// Laplacian. dst and x must have length NumNodes().
func (g *Graph) LapMul(dst, x []float64) {
	if len(x) != g.n || len(dst) != g.n {
		panic("graph: LapMul dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, e := range g.edges {
		d := e.W * (x[e.U] - x[e.V])
		dst[e.U] += d
		dst[e.V] -= d
	}
}

// DegreeVector returns the weighted degree of every node (the Laplacian
// diagonal).
func (g *Graph) DegreeVector() []float64 {
	d := make([]float64, g.n)
	for _, e := range g.edges {
		d[e.U] += e.W
		d[e.V] += e.W
	}
	return d
}

// Validate performs internal consistency checks (adjacency mirrors the edge
// list, cached totals correct) and returns the first problem found. It is
// meant for tests and debug assertions, not hot paths.
func (g *Graph) Validate() error {
	if len(g.adj) != g.n {
		return fmt.Errorf("graph: %d adjacency lists for %d nodes", len(g.adj), g.n)
	}
	var tw float64
	deg := make([]int, g.n)
	for i, e := range g.edges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop", i)
		}
		if !(e.W > 0) {
			return fmt.Errorf("graph: edge %d weight %v not positive", i, e.W)
		}
		tw += e.W
		deg[e.U]++
		deg[e.V]++
	}
	if math.Abs(tw-g.totalWeight) > 1e-9*(1+math.Abs(tw)) {
		return fmt.Errorf("graph: cached total weight %v != recomputed %v", g.totalWeight, tw)
	}
	for u := range g.adj {
		if len(g.adj[u]) != deg[u] {
			return fmt.Errorf("graph: node %d adjacency length %d != degree %d", u, len(g.adj[u]), deg[u])
		}
		for _, a := range g.adj[u] {
			if a.Edge < 0 || a.Edge >= len(g.edges) {
				return fmt.Errorf("graph: node %d has arc to invalid edge %d", u, a.Edge)
			}
			e := g.edges[a.Edge]
			if (e.U != u || e.V != a.To) && (e.V != u || e.U != a.To) {
				return fmt.Errorf("graph: node %d arc (%d, edge %d) disagrees with edge (%d,%d)", u, a.To, a.Edge, e.U, e.V)
			}
		}
	}
	return nil
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{N=%d, E=%d, W=%.4g}", g.n, len(g.edges), g.totalWeight)
}
