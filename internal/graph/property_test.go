package graph

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/vecmath"
)

// stringsBuilderLike is a tiny buffer adapter for the I/O property test.
type stringsBuilderLike struct{ buf bytes.Buffer }

func (s *stringsBuilderLike) Write(p []byte) (int, error) { return s.buf.Write(p) }
func (s *stringsBuilderLike) reader() io.Reader           { return bytes.NewReader(s.buf.Bytes()) }

// randomGraphFromSeed builds a reproducible random multigraph.
func randomGraphFromSeed(seed uint64, n, m int) *Graph {
	r := vecmath.NewRNG(seed)
	g := New(n, m)
	for k := 0; k < m; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.01, 100))
		}
	}
	return g
}

// Property: the Laplacian quadratic form is invariant under constant
// shifts of x (the constant vector is in the null space).
func TestQuadraticFormShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		g := randomGraphFromSeed(seed, 20, 40)
		r := vecmath.NewRNG(seed ^ 0xabc)
		x := make([]float64, 20)
		r.FillNormal(x)
		q1 := g.QuadraticForm(x)
		for i := range x {
			x[i] += shift
		}
		q2 := g.QuadraticForm(x)
		scale := math.Abs(q1) + 1
		return math.Abs(q1-q2) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LapMul is linear: L(ax + by) = a Lx + b Ly.
func TestLapMulLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 15, 30)
		r := vecmath.NewRNG(seed ^ 0x777)
		x := make([]float64, 15)
		y := make([]float64, 15)
		r.FillNormal(x)
		r.FillNormal(y)
		a, b := r.Range(-3, 3), r.Range(-3, 3)

		comb := make([]float64, 15)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		lc := make([]float64, 15)
		g.LapMul(lc, comb)

		lx := make([]float64, 15)
		ly := make([]float64, 15)
		g.LapMul(lx, x)
		g.LapMul(ly, y)
		for i := range lc {
			want := a*lx[i] + b*ly[i]
			if math.Abs(lc[i]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quadratic form is non-negative (Laplacians are PSD).
func TestQuadraticFormPSDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 12, 25)
		r := vecmath.NewRNG(seed ^ 0x31)
		x := make([]float64, 12)
		r.FillNormal(x)
		return g.QuadraticForm(x) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR conversion preserves the Laplacian action exactly for any
// random multigraph (parallel edges merged).
func TestCSREquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 18, 50)
		c := NewCSR(g)
		r := vecmath.NewRNG(seed ^ 0x5)
		x := make([]float64, 18)
		r.FillNormal(x)
		a := make([]float64, 18)
		b := make([]float64, 18)
		g.LapMul(a, x)
		c.LapMul(b, x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-8*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Coalesce preserves node count, total weight, and the Laplacian
// action while removing all parallel edges.
func TestCoalesceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 10, 40)
		c := g.Coalesce()
		if c.NumNodes() != g.NumNodes() {
			return false
		}
		if math.Abs(c.TotalWeight()-g.TotalWeight()) > 1e-9*(1+g.TotalWeight()) {
			return false
		}
		// No duplicate pairs.
		seen := map[uint64]bool{}
		for _, e := range c.Edges() {
			if seen[e.Key()] {
				return false
			}
			seen[e.Key()] = true
		}
		// Same Laplacian action.
		r := vecmath.NewRNG(seed ^ 0x99)
		x := make([]float64, 10)
		r.FillNormal(x)
		a := make([]float64, 10)
		b := make([]float64, 10)
		g.LapMul(a, x)
		c.LapMul(b, x)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-8*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: component labels partition the node set consistently with
// pairwise reachability derived from union-find over the edges.
func TestComponentsMatchUnionFindProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 16, 12) // sparse: likely disconnected
		labels, count := Components(g)
		uf := NewUnionFind(16)
		for _, e := range g.Edges() {
			uf.Union(e.U, e.V)
		}
		if uf.Count() != count {
			return false
		}
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if (labels[i] == labels[j]) != uf.Connected(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: graph text I/O round-trips exactly.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraphFromSeed(seed, 9, 20)
		var buf stringsBuilderLike
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Read(buf.reader())
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Edges() {
			if g.Edge(i) != back.Edge(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
