package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := New(4, 0)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 0.25)
	g.AddEdge(2, 3, 3.0)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 4 || back.NumEdges() != 3 {
		t.Fatalf("round trip size %v", back)
	}
	for i := range g.Edges() {
		if g.Edge(i) != back.Edge(i) {
			t.Fatalf("edge %d: %v vs %v", i, g.Edge(i), back.Edge(i))
		}
	}
}

func TestReadCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n3 2\n# edge block\n0 1 1.0\n\n1 2 2.0\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Edge(1).W != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "x y\n",
		"short header":    "3\n",
		"negative header": "-1 0\n",
		"missing edges":   "3 2\n0 1 1.0\n",
		"bad endpoint":    "3 1\na 1 1.0\n",
		"bad weight":      "3 1\n0 1 w\n",
		"range endpoint":  "3 1\n0 9 1.0\n",
		"self loop":       "3 1\n1 1 1.0\n",
		"negative weight": "3 1\n0 1 -2\n",
		"two-field edge":  "3 1\n0 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}
