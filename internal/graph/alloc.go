package graph

// Alloc is the allocator contract frozen-operator construction accepts.
// The concrete implementation is kernel.Arena (a page-aligned bump
// allocator); graph cannot import kernel — kernel's SpMV bodies import
// graph — so the dependency is inverted through this three-method
// interface. A nil Alloc everywhere means plain heap allocation.
type Alloc interface {
	Float64(n int) []float64
	Int(n int) []int
	Int32(n int) []int32
}

func allocFloat64(a Alloc, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.Float64(n)
}

func allocInt(a Alloc, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Int(n)
}

func allocInt32(a Alloc, n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.Int32(n)
}

// ArenaBytes returns the exact payload footprint of this CSR's arrays —
// what CompactInto will draw from an allocator (excluding per-allocation
// alignment padding).
func (c *CSR) ArenaBytes() int {
	return 8 * (len(c.RowPtr) + len(c.ColIdx) + len(c.Weights) + len(c.Degree)) // ints and float64s are both 8B
}

// CompactInto copies the frozen CSR arrays into alloc-provided storage and
// returns the compacted view. The source is built by NewCSR's two-pass
// assembly as four separate heap objects; compacting them into one arena
// block keeps the three arrays an SpMV streams in lockstep (RowPtr, ColIdx,
// Weights) physically adjacent and lets a snapshot generation release the
// whole operator as a single allocation. The copy is O(nnz), noise next to
// the factorization built on top.
func (c *CSR) CompactInto(alloc Alloc) *CSR {
	out := &CSR{
		N:       c.N,
		RowPtr:  allocInt(alloc, len(c.RowPtr)),
		ColIdx:  allocInt(alloc, len(c.ColIdx)),
		Weights: allocFloat64(alloc, len(c.Weights)),
		Degree:  allocFloat64(alloc, len(c.Degree)),
	}
	copy(out.RowPtr, c.RowPtr)
	copy(out.ColIdx, c.ColIdx)
	copy(out.Weights, c.Weights)
	copy(out.Degree, c.Degree)
	return out
}
