package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text interchange format is a minimal weighted edge list:
//
//	# comment lines start with '#'
//	<numNodes> <numEdges>
//	<u> <v> <w>
//	...
//
// Nodes are 0-based. It is deliberately close to the SuiteSparse/Matrix
// Market coordinate format so converted datasets drop in easily.

// Write serializes g to w in the text edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	nextFields := func() ([]string, error) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return strings.Fields(s), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	head, err := nextFields()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if len(head) != 2 {
		return nil, fmt.Errorf("graph: line %d: header needs 2 fields, got %d", line, len(head))
	}
	n, err := strconv.Atoi(head[0])
	if err != nil {
		return nil, fmt.Errorf("graph: line %d: bad node count %q", line, head[0])
	}
	m, err := strconv.Atoi(head[1])
	if err != nil {
		return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, head[1])
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: line %d: negative dimensions %d %d", line, n, m)
	}
	g := New(n, m)
	for i := 0; i < m; i++ {
		f, err := nextFields()
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d of %d: %w", i, m, err)
		}
		if len(f) != 3 {
			return nil, fmt.Errorf("graph: line %d: edge needs 3 fields, got %d", line, len(f))
		}
		u, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, f[0])
		}
		v, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, f[1])
		}
		w, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad weight %q", line, f[2])
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range", line)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop rejected", line)
		}
		if !(w > 0) {
			return nil, fmt.Errorf("graph: line %d: weight %v not positive", line, w)
		}
		g.AddEdge(u, v, w)
	}
	return g, nil
}
