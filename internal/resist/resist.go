// Package resist unifies the repository's effective-resistance machinery
// behind one Oracle interface with three interchangeable strategies:
//
//   - Exact: Jacobi-preconditioned CG solves of L x = b_pq. Slow (one solve
//     per query) but accurate to solver tolerance. The validation oracle.
//   - Tree: O(1) tree-path resistance over a low-stretch spanning tree — an
//     upper bound by Rayleigh monotonicity. GRASS's ranking signal.
//   - Krylov: the paper's Eq. (3) subspace estimate — O(log N) per query
//     after near-linear setup, biased low. inGRASS's setup-phase signal.
//
// A CachingOracle wrapper memoizes repeated queries, which batch
// re-ranking workloads hit heavily.
package resist

import (
	"context"
	"fmt"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/tree"
)

// Oracle answers effective-resistance queries on a fixed graph.
type Oracle interface {
	// Resistance returns (an approximation of) the effective resistance
	// between p and q. Implementations return +Inf for disconnected pairs
	// where detectable.
	Resistance(p, q int) float64
	// Kind names the strategy for reporting.
	Kind() string
}

// Exact computes true effective resistances with CG solves.
type Exact struct {
	solver *sparse.LaplacianSolver
}

// NewExact builds the exact oracle. g must be connected for meaningful
// answers. A zero opts.Tol defaults to 1e-10 (tighter than the general
// solver default: this is the validation oracle). opts.Workers freezes the
// solver's kernel-pool parallelism (clamped to GOMAXPROCS); repeated
// queries reuse the frozen operator, so warm parallel queries stay
// allocation-free.
func NewExact(g *graph.Graph, opts solver.Options) *Exact {
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	return &Exact{solver: sparse.NewLaplacianSolver(g, opts)}
}

// Resistance solves L x = b_pq and returns x_p - x_q. The Oracle interface
// is context-free (estimator strategies answer in O(1)); exact solves run
// uncancellable under context.Background.
func (e *Exact) Resistance(p, q int) float64 {
	r, err := e.solver.SolvePair(context.Background(), p, q)
	if err != nil {
		// Loose convergence still yields a usable estimate; only report
		// the value.
		return r
	}
	return r
}

// Kind returns "exact".
func (e *Exact) Kind() string { return "exact" }

// Solves reports how many CG solves have been issued (diagnostics).
func (e *Exact) Solves() int { return e.solver.Solves }

// Tree answers with the tree-path resistance upper bound.
type Tree struct {
	oracle *tree.PathOracle
}

// NewTree builds the tree oracle over a low-stretch spanning tree of g.
func NewTree(g *graph.Graph, seed uint64) *Tree {
	st := tree.LowStretch(g, seed)
	return &Tree{oracle: tree.NewPathOracle(st)}
}

// NewTreeFrom wraps an existing spanning tree.
func NewTreeFrom(st *tree.SpanningTree) *Tree {
	return &Tree{oracle: tree.NewPathOracle(st)}
}

// Resistance returns the tree-path resistance (an upper bound on the true
// value; +Inf across components).
func (t *Tree) Resistance(p, q int) float64 { return t.oracle.Resistance(p, q) }

// Kind returns "tree".
func (t *Tree) Kind() string { return "tree" }

// Krylov answers with the paper's Eq. (3) subspace estimate.
type Krylov struct {
	emb *krylov.Embedding
}

// NewKrylov builds the Krylov oracle.
func NewKrylov(g *graph.Graph, cfg krylov.Config) (*Krylov, error) {
	emb, err := krylov.NewEmbedding(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("resist: %w", err)
	}
	return &Krylov{emb: emb}, nil
}

// Resistance returns the embedded estimate (finite even across components;
// biased low in general).
func (k *Krylov) Resistance(p, q int) float64 { return k.emb.Resistance(p, q) }

// Kind returns "krylov".
func (k *Krylov) Kind() string { return "krylov" }

// CachingOracle memoizes another oracle's answers by node pair.
type CachingOracle struct {
	inner Oracle
	cache map[uint64]float64
	// Hits and Misses count cache behavior.
	Hits, Misses int
}

// NewCaching wraps inner with an unbounded memo table.
func NewCaching(inner Oracle) *CachingOracle {
	return &CachingOracle{inner: inner, cache: make(map[uint64]float64)}
}

// Resistance returns the cached or freshly computed value.
func (c *CachingOracle) Resistance(p, q int) float64 {
	if p == q {
		return 0
	}
	k := graph.KeyOf(p, q)
	if v, ok := c.cache[k]; ok {
		c.Hits++
		return v
	}
	c.Misses++
	v := c.inner.Resistance(p, q)
	c.cache[k] = v
	return v
}

// Kind reports the wrapped strategy.
func (c *CachingOracle) Kind() string { return c.inner.Kind() + "+cache" }

// CompareStats summarizes an accuracy comparison between an estimator and
// the exact oracle over a set of node pairs.
type CompareStats struct {
	Pairs          int
	MeanRatio      float64 // mean estimate/exact
	MaxRatio       float64
	MinRatio       float64
	UpperBoundOK   bool // estimator never fell below exact (tree property)
	NeverOvershoot bool // estimator never exceeded exact (subspace property)
}

// Compare evaluates estimator accuracy against exact on the given pairs.
func Compare(estimator, exact Oracle, pairs [][2]int) CompareStats {
	st := CompareStats{UpperBoundOK: true, NeverOvershoot: true, MinRatio: -1}
	for _, pq := range pairs {
		p, q := pq[0], pq[1]
		if p == q {
			continue
		}
		ev := estimator.Resistance(p, q)
		xv := exact.Resistance(p, q)
		if xv <= 0 {
			continue
		}
		ratio := ev / xv
		st.Pairs++
		st.MeanRatio += ratio
		if ratio > st.MaxRatio {
			st.MaxRatio = ratio
		}
		if st.MinRatio < 0 || ratio < st.MinRatio {
			st.MinRatio = ratio
		}
		if ratio < 1-1e-6 {
			st.UpperBoundOK = false
		}
		if ratio > 1+1e-6 {
			st.NeverOvershoot = false
		}
	}
	if st.Pairs > 0 {
		st.MeanRatio /= float64(st.Pairs)
	}
	return st
}
