package resist

import (
	"math"
	"testing"

	"ingrass/internal/graph"
	"ingrass/internal/krylov"
	"ingrass/internal/solver"
	"ingrass/internal/vecmath"
)

func grid(r, c int) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

func randomPairs(n, count int, seed uint64) [][2]int {
	r := vecmath.NewRNG(seed)
	out := make([][2]int, 0, count)
	for len(out) < count {
		p, q := r.Intn(n), r.Intn(n)
		if p != q {
			out = append(out, [2]int{p, q})
		}
	}
	return out
}

func TestExactKnownValues(t *testing.T) {
	// Path 0-1-2 with weights 2, 4: R(0,2) = 1/2 + 1/4.
	g := graph.New(3, 2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 4)
	ex := NewExact(g, solver.Options{Tol: 1e-12})
	if r := ex.Resistance(0, 2); math.Abs(r-0.75) > 1e-9 {
		t.Fatalf("R(0,2) = %v, want 0.75", r)
	}
	if ex.Kind() != "exact" {
		t.Fatal("kind")
	}
	if ex.Solves() != 1 {
		t.Fatalf("solves %d", ex.Solves())
	}
}

func TestTreeUpperBounds(t *testing.T) {
	g := grid(6, 6)
	ex := NewExact(g, solver.Options{Tol: 1e-11})
	tr := NewTree(g, 1)
	st := Compare(tr, ex, randomPairs(36, 40, 2))
	if !st.UpperBoundOK {
		t.Fatalf("tree oracle fell below exact: %+v", st)
	}
	if st.MeanRatio < 1 {
		t.Fatalf("mean ratio %v < 1", st.MeanRatio)
	}
	if tr.Kind() != "tree" {
		t.Fatal("kind")
	}
}

func TestKrylovCloseToExact(t *testing.T) {
	g := grid(6, 6)
	ex := NewExact(g, solver.Options{Tol: 1e-11})
	kr, err := NewKrylov(g, krylov.Config{Seed: 3, Order: 24, Starts: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := Compare(kr, ex, randomPairs(36, 40, 4))
	// Subspace estimates are biased low but should track within a modest
	// band on a small graph with a rich subspace.
	if st.MeanRatio < 0.3 || st.MeanRatio > 1.2 {
		t.Fatalf("krylov mean ratio %v out of band", st.MeanRatio)
	}
	if kr.Kind() != "krylov" {
		t.Fatal("kind")
	}
}

func TestKrylovErrorPropagation(t *testing.T) {
	if _, err := NewKrylov(graph.New(0, 0), krylov.Config{}); err == nil {
		t.Fatal("expected error on empty graph")
	}
}

func TestCachingOracle(t *testing.T) {
	g := grid(5, 5)
	ex := NewExact(g, solver.Options{Tol: 1e-10})
	c := NewCaching(ex)
	a := c.Resistance(0, 24)
	b := c.Resistance(24, 0) // symmetric key: must hit
	if a != b {
		t.Fatal("cache must be orientation independent")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.Resistance(3, 3) != 0 {
		t.Fatal("self pair must be 0 without touching the cache")
	}
	if ex.Solves() != 1 {
		t.Fatalf("inner oracle consulted %d times, want 1", ex.Solves())
	}
	if c.Kind() != "exact+cache" {
		t.Fatalf("kind %q", c.Kind())
	}
}

func TestCompareEmptyPairs(t *testing.T) {
	g := grid(3, 3)
	ex := NewExact(g, solver.Options{Tol: 1e-10})
	st := Compare(ex, ex, [][2]int{{1, 1}})
	if st.Pairs != 0 {
		t.Fatal("self pairs must be skipped")
	}
}

func TestExactSymmetryProperty(t *testing.T) {
	g := grid(5, 5)
	ex := NewExact(g, solver.Options{Tol: 1e-11})
	r := vecmath.NewRNG(5)
	for i := 0; i < 15; i++ {
		p, q := r.Intn(25), r.Intn(25)
		if math.Abs(ex.Resistance(p, q)-ex.Resistance(q, p)) > 1e-8 {
			t.Fatalf("asymmetry at (%d,%d)", p, q)
		}
	}
}

// Triangle inequality: effective resistance is a metric.
func TestExactTriangleInequality(t *testing.T) {
	g := grid(5, 5)
	ex := NewCaching(NewExact(g, solver.Options{Tol: 1e-11}))
	r := vecmath.NewRNG(6)
	for i := 0; i < 25; i++ {
		a, b, c := r.Intn(25), r.Intn(25), r.Intn(25)
		if ex.Resistance(a, c) > ex.Resistance(a, b)+ex.Resistance(b, c)+1e-8 {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", a, b, c)
		}
	}
}

// Rayleigh monotonicity: adding an edge can only decrease resistances.
func TestRayleighMonotonicity(t *testing.T) {
	g := grid(5, 5)
	before := NewCaching(NewExact(g, solver.Options{Tol: 1e-11}))
	pairs := randomPairs(25, 15, 7)
	vals := make([]float64, len(pairs))
	for i, pq := range pairs {
		vals[i] = before.Resistance(pq[0], pq[1])
	}
	g2 := g.Clone()
	g2.AddEdge(0, 24, 2) // new long-range edge
	after := NewCaching(NewExact(g2, solver.Options{Tol: 1e-11}))
	for i, pq := range pairs {
		if after.Resistance(pq[0], pq[1]) > vals[i]+1e-8 {
			t.Fatalf("resistance increased after adding an edge at pair %v", pq)
		}
	}
}
