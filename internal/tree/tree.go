// Package tree implements the spanning-tree substrate required by GRASS
// style sparsifiers: maximum-weight (Kruskal, Prim) and AKPW-flavored
// low-stretch spanning trees, a constant-time tree-path effective-resistance
// oracle (Euler tour + sparse-table LCA), and stretch statistics.
//
// A spanning tree of the input graph is the backbone of the initial
// sparsifier: off-tree edges are then ranked by spectral distortion
// (weight x tree-path resistance) and the best ones appended.
package tree

import (
	"fmt"

	"ingrass/internal/graph"
)

// SpanningTree is a rooted spanning forest of a host graph, described by the
// indices of the tree edges within the host graph's edge list.
type SpanningTree struct {
	G       *graph.Graph
	EdgeIdx []int // indices into G.Edges() forming the forest

	// Rooted representation, computed by the constructor:
	Parent     []int // parent node id, -1 for roots
	ParentEdge []int // index into G.Edges() of the edge to the parent, -1 for roots
	Order      []int // nodes in BFS order, roots first within their component
	Depth      []int // hop depth from the component root
	Roots      []int // one root per component
}

// New builds the rooted forest for the given tree edge set. It panics if
// edgeIdx contains a cycle (i.e. is not a forest), since that indicates a
// bug in the caller's tree construction.
func New(g *graph.Graph, edgeIdx []int) *SpanningTree {
	n := g.NumNodes()
	t := &SpanningTree{
		G:          g,
		EdgeIdx:    append([]int(nil), edgeIdx...),
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		Depth:      make([]int, n),
	}
	// Adjacency restricted to tree edges.
	adj := make([][]graph.Arc, n)
	uf := graph.NewUnionFind(n)
	for _, ei := range edgeIdx {
		e := g.Edge(ei)
		if !uf.Union(e.U, e.V) {
			panic(fmt.Sprintf("tree: edge set contains cycle at edge %d (%d-%d)", ei, e.U, e.V))
		}
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, Edge: ei})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, Edge: ei})
	}
	for i := range t.Parent {
		t.Parent[i] = -2 // unvisited sentinel
		t.ParentEdge[i] = -1
	}
	t.Order = make([]int, 0, n)
	for s := 0; s < n; s++ {
		if t.Parent[s] != -2 {
			continue
		}
		t.Roots = append(t.Roots, s)
		t.Parent[s] = -1
		t.Depth[s] = 0
		head := len(t.Order)
		t.Order = append(t.Order, s)
		for head < len(t.Order) {
			u := t.Order[head]
			head++
			for _, a := range adj[u] {
				if t.Parent[a.To] == -2 {
					t.Parent[a.To] = u
					t.ParentEdge[a.To] = a.Edge
					t.Depth[a.To] = t.Depth[u] + 1
					t.Order = append(t.Order, a.To)
				}
			}
		}
	}
	return t
}

// NumComponents returns the number of trees in the forest.
func (t *SpanningTree) NumComponents() int { return len(t.Roots) }

// IsSpanning reports whether the forest is a single spanning tree of a
// connected host graph (N-1 edges, one component).
func (t *SpanningTree) IsSpanning() bool {
	return len(t.Roots) == 1 && len(t.EdgeIdx) == t.G.NumNodes()-1
}

// InTree returns a boolean mask over the host graph's edge indices marking
// tree membership.
func (t *SpanningTree) InTree() []bool {
	mask := make([]bool, t.G.NumEdges())
	for _, ei := range t.EdgeIdx {
		mask[ei] = true
	}
	return mask
}

// OffTreeEdges returns the indices of host edges not in the forest.
func (t *SpanningTree) OffTreeEdges() []int {
	mask := t.InTree()
	out := make([]int, 0, t.G.NumEdges()-len(t.EdgeIdx))
	for i := range mask {
		if !mask[i] {
			out = append(out, i)
		}
	}
	return out
}

// TotalWeight returns the sum of tree edge weights.
func (t *SpanningTree) TotalWeight() float64 {
	var s float64
	for _, ei := range t.EdgeIdx {
		s += t.G.Edge(ei).W
	}
	return s
}
