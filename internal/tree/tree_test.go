package tree

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/graph"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

func grid(r, c int, w float64) *graph.Graph {
	g := graph.New(r*c, 2*r*c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), w)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), w)
			}
		}
	}
	return g
}

func randomConnected(n, extra int, seed uint64) *graph.Graph {
	r := vecmath.NewRNG(seed)
	g := graph.New(n, n+extra)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)], r.Range(0.1, 10))
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v, r.Range(0.1, 10))
		}
	}
	return g
}

func TestNewRejectsCycle(t *testing.T) {
	g := graph.New(3, 3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cyclic edge set")
		}
	}()
	New(g, []int{0, 1, 2})
}

func TestSpanningTreeStructure(t *testing.T) {
	g := grid(4, 4, 1)
	st := MaxWeight(g)
	if !st.IsSpanning() {
		t.Fatalf("not spanning: %d edges, %d components", len(st.EdgeIdx), st.NumComponents())
	}
	if len(st.Order) != 16 {
		t.Fatalf("order covers %d nodes", len(st.Order))
	}
	// Parent pointers must decrease depth by one.
	for v := 0; v < 16; v++ {
		if p := st.Parent[v]; p >= 0 {
			if st.Depth[v] != st.Depth[p]+1 {
				t.Fatalf("depth inconsistency at %d", v)
			}
		}
	}
	off := st.OffTreeEdges()
	if len(off)+len(st.EdgeIdx) != g.NumEdges() {
		t.Fatal("off-tree partition wrong")
	}
}

func TestMaxWeightPrefersHeavyEdges(t *testing.T) {
	// Triangle where the (0,1) edge is heavy: it must be kept.
	g := graph.New(3, 3)
	heavy := g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 0.5)
	st := MaxWeight(g)
	found := false
	for _, ei := range st.EdgeIdx {
		if ei == heavy {
			found = true
		}
		if ei == 2 {
			t.Fatal("lightest edge should be off-tree")
		}
	}
	if !found {
		t.Fatal("heavy edge missing from max-weight tree")
	}
}

func TestPrimMatchesKruskalWeight(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := randomConnected(60, 100, seed)
		k := MaxWeight(g)
		p := Prim(g)
		if !k.IsSpanning() || !p.IsSpanning() {
			t.Fatal("trees not spanning")
		}
		if math.Abs(k.TotalWeight()-p.TotalWeight()) > 1e-9 {
			t.Fatalf("seed %d: Kruskal weight %v != Prim weight %v", seed, k.TotalWeight(), p.TotalWeight())
		}
	}
}

func TestForestOnDisconnectedGraph(t *testing.T) {
	g := graph.New(5, 2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	st := MaxWeight(g)
	if st.NumComponents() != 3 { // {0,1}, {2,3}, {4}
		t.Fatalf("components = %d", st.NumComponents())
	}
	if st.IsSpanning() {
		t.Fatal("forest should not claim to be spanning")
	}
	o := NewPathOracle(st)
	if !math.IsInf(o.Resistance(0, 4), 1) {
		t.Fatal("cross-component resistance must be +Inf")
	}
	if o.LCA(0, 2) != -1 {
		t.Fatal("cross-component LCA must be -1")
	}
}

func TestLowStretchSpanning(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := randomConnected(80, 200, seed)
		st := LowStretch(g, seed)
		if !st.IsSpanning() {
			t.Fatalf("seed %d: low-stretch tree not spanning (%d edges, %d comps)",
				seed, len(st.EdgeIdx), st.NumComponents())
		}
	}
}

func TestLowStretchOnGridBeatsWorstCase(t *testing.T) {
	// On a uniform grid the max-weight tree is arbitrary (all ties); the
	// low-stretch tree's mean stretch should stay modest.
	g := grid(20, 20, 1)
	st := LowStretch(g, 7)
	if !st.IsSpanning() {
		t.Fatal("not spanning")
	}
	o := NewPathOracle(st)
	stats := Stretch(st, o)
	if stats.Mean > 30 {
		t.Fatalf("mean stretch %v too large for 20x20 grid", stats.Mean)
	}
	if stats.OffTree != g.NumEdges()-(g.NumNodes()-1) {
		t.Fatalf("off-tree count %d", stats.OffTree)
	}
}

func TestLowStretchEmptyAndTiny(t *testing.T) {
	if st := LowStretch(graph.New(0, 0), 1); len(st.EdgeIdx) != 0 {
		t.Fatal("empty graph should give empty forest")
	}
	g := graph.New(2, 1)
	g.AddEdge(0, 1, 3)
	st := LowStretch(g, 1)
	if len(st.EdgeIdx) != 1 {
		t.Fatalf("single edge graph: %d tree edges", len(st.EdgeIdx))
	}
}

func TestPathOracleAgainstBruteForce(t *testing.T) {
	g := randomConnected(40, 60, 11)
	st := MaxWeight(g)
	o := NewPathOracle(st)

	// Brute force: BFS on the tree computing path resistance.
	treeAdj := make([][]graph.Arc, g.NumNodes())
	for _, ei := range st.EdgeIdx {
		e := g.Edge(ei)
		treeAdj[e.U] = append(treeAdj[e.U], graph.Arc{To: e.V, Edge: ei})
		treeAdj[e.V] = append(treeAdj[e.V], graph.Arc{To: e.U, Edge: ei})
	}
	brute := func(u, v int) float64 {
		dist := make([]float64, g.NumNodes())
		seen := make([]bool, g.NumNodes())
		seen[u] = true
		queue := []int{u}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x == v {
				return dist[v]
			}
			for _, a := range treeAdj[x] {
				if !seen[a.To] {
					seen[a.To] = true
					dist[a.To] = dist[x] + 1/g.Edge(a.Edge).W
					queue = append(queue, a.To)
				}
			}
		}
		return math.Inf(1)
	}

	r := vecmath.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		u, v := r.Intn(40), r.Intn(40)
		want := brute(u, v)
		got := o.Resistance(u, v)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("R_T(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestPathOracleLCABasics(t *testing.T) {
	// Path 0-1-2-3-4: LCA in a path rooted at 0 is the shallower node.
	g := graph.New(5, 4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	st := New(g, []int{0, 1, 2, 3})
	o := NewPathOracle(st)
	if l := o.LCA(1, 4); l != 1 {
		t.Fatalf("LCA(1,4) = %d", l)
	}
	if l := o.LCA(3, 3); l != 3 {
		t.Fatalf("LCA(3,3) = %d", l)
	}
	if r := o.Resistance(0, 4); math.Abs(r-4) > 1e-12 {
		t.Fatalf("R(0,4) = %v", r)
	}
	if r := o.Resistance(2, 2); r != 0 {
		t.Fatalf("R(2,2) = %v", r)
	}
}

func TestPathEdges(t *testing.T) {
	// Star: 0 center, leaves 1..3.
	g := graph.New(4, 3)
	e01 := g.AddEdge(0, 1, 1)
	e02 := g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	st := New(g, []int{0, 1, 2})
	o := NewPathOracle(st)
	p := o.PathEdges(1, 2)
	if len(p) != 2 || p[0] != e01 || p[1] != e02 {
		t.Fatalf("path = %v", p)
	}
	if len(o.PathEdges(2, 2)) != 0 {
		t.Fatal("self path must be empty")
	}
}

func TestPathEdgesResistanceConsistency(t *testing.T) {
	g := randomConnected(30, 50, 3)
	st := MaxWeight(g)
	o := NewPathOracle(st)
	r := vecmath.NewRNG(4)
	for trial := 0; trial < 30; trial++ {
		u, v := r.Intn(30), r.Intn(30)
		var sum float64
		for _, ei := range o.PathEdges(u, v) {
			sum += 1 / g.Edge(ei).W
		}
		if math.Abs(sum-o.Resistance(u, v)) > 1e-9 {
			t.Fatalf("path edges resistance %v != oracle %v", sum, o.Resistance(u, v))
		}
	}
}

// Property: tree-path resistance is an upper bound on the true effective
// resistance (Rayleigh monotonicity), and both agree on tree edges of a
// tree-only graph.
func TestTreeResistanceUpperBoundsEffective(t *testing.T) {
	g := randomConnected(25, 40, 21)
	st := MaxWeight(g)
	o := NewPathOracle(st)
	lap := sparse.NewLaplacianSolver(g, solver.Options{Tol: 1e-11})
	r := vecmath.NewRNG(6)
	for trial := 0; trial < 20; trial++ {
		u, v := r.Intn(25), r.Intn(25)
		if u == v {
			continue
		}
		exact, err := lap.SolvePair(context.Background(), u, v)
		if err != nil {
			t.Fatal(err)
		}
		bound := o.Resistance(u, v)
		if exact > bound*(1+1e-6)+1e-9 {
			t.Fatalf("R_eff(%d,%d)=%v exceeds tree bound %v", u, v, exact, bound)
		}
	}
}

// Property: stretch of every tree edge is 1 and total stretch >= edge count.
func TestStretchProperties(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(20, 30, seed)
		st := MaxWeight(g)
		o := NewPathOracle(st)
		s := Stretch(st, o)
		// Every edge has stretch >= 1 up to float fuzz (tree path is the
		// best single path; for the max-weight tree off-tree edges can
		// have stretch < 1 only if a heavier parallel path exists - not
		// possible since stretch = w_e * R_path and R_path <= 1/w_e fails
		// ... so just check aggregates are sane).
		return s.Total > 0 && s.Max >= 1-1e-9 && s.Mean > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStretchOnPureTree(t *testing.T) {
	g := graph.New(4, 3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	st := MaxWeight(g)
	o := NewPathOracle(st)
	s := Stretch(st, o)
	if s.OffTree != 0 || math.Abs(s.Total-3) > 1e-12 || math.Abs(s.Mean-1) > 1e-12 {
		t.Fatalf("pure tree stretch stats %+v", s)
	}
}
