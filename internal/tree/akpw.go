package tree

import (
	"ingrass/internal/graph"
	"ingrass/internal/vecmath"
)

// LowStretch builds a spanning forest with an AKPW-flavored multilevel
// clustering scheme (Alon-Karp-Peleg-West as refined by Abraham-Neiman):
//
//  1. Edges are admitted in decreasing weight classes (geometric buckets
//     with growth factor mu), since in the conductance model heavy edges
//     are low-resistance and should be near the bottom of the tree.
//  2. At each level, the current clusters are grouped by randomized
//     low-diameter ball growing over the admissible inter-cluster edges;
//     BFS edges of each ball join the tree and the ball contracts into a
//     single cluster for the next level.
//
// Compared to the plain maximum-weight tree, the shallow balls bound the
// hop diameter of each cluster, which is what keeps the average stretch —
// and hence the resistance diameter that the LRD decomposition later
// partitions — low. seed makes the randomized ball growing deterministic.
func LowStretch(g *graph.Graph, seed uint64) *SpanningTree {
	n := g.NumNodes()
	if n == 0 || g.NumEdges() == 0 {
		return New(g, nil)
	}
	rng := vecmath.NewRNG(seed)
	uf := graph.NewUnionFind(n)
	treeEdges := make([]int, 0, n-1)

	_, targetComponents := graph.Components(g)

	maxW := g.Edge(0).W
	minW := maxW
	for _, e := range g.Edges() {
		if e.W > maxW {
			maxW = e.W
		}
		if e.W < minW {
			minW = e.W
		}
	}
	const mu = 4.0
	threshold := maxW / mu

	type superArc struct {
		to   int
		edge int
	}
	// Reused scratch, sized on demand per level.
	adj := make(map[int][]superArc)
	assigned := make(map[int]bool)

	for uf.Count() > targetComponents {
		// Gather admissible edges that cross current clusters.
		clear(adj)
		crossCount := 0
		for ei, e := range g.Edges() {
			if e.W < threshold {
				continue
			}
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			adj[ru] = append(adj[ru], superArc{to: rv, edge: ei})
			adj[rv] = append(adj[rv], superArc{to: ru, edge: ei})
			crossCount++
		}
		if crossCount == 0 {
			if threshold <= 0 {
				break // only cross-component edges remain impossible
			}
			// Admit the next weight class; below the minimum weight admit
			// everything so termination is unconditional.
			if threshold <= minW {
				threshold = 0
			} else {
				threshold /= mu
			}
			continue
		}

		// Randomized ball growing over the supernode graph.
		supers := make([]int, 0, len(adj))
		for s := range adj {
			supers = append(supers, s)
		}
		// Map iteration order is nondeterministic; sort then shuffle with
		// the seeded RNG for reproducibility.
		sortInts(supers)
		rng.Shuffle(len(supers), func(i, j int) { supers[i], supers[j] = supers[j], supers[i] })

		clear(assigned)
		queue := make([]int, 0, 64)
		hops := make(map[int]int)
		for _, center := range supers {
			if assigned[center] {
				continue
			}
			radius := 1 + rng.Intn(2) // shallow balls: 1 or 2 hops
			assigned[center] = true
			clear(hops)
			hops[center] = 0
			queue = append(queue[:0], center)
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				if hops[x] >= radius {
					continue
				}
				for _, a := range adj[x] {
					if assigned[a.to] {
						continue
					}
					assigned[a.to] = true
					hops[a.to] = hops[x] + 1
					treeEdges = append(treeEdges, a.edge)
					uf.Union(x, a.to)
					queue = append(queue, a.to)
				}
			}
		}
		if threshold <= minW {
			threshold = 0
		} else {
			threshold /= mu
		}
	}
	return New(g, treeEdges)
}

// sortInts is a small insertion/shell sort to avoid importing sort for a
// hot path slice that is usually tiny at deep levels.
func sortInts(a []int) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}
