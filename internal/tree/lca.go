package tree

import (
	"math"
)

// PathOracle answers tree-path effective-resistance queries in O(1) after
// O(N log N) preprocessing, using an Euler tour with a sparse-table range
// minimum query for lowest common ancestors and prefix resistances to the
// root. The tree-path resistance
//
//	R_T(u, v) = res(u) + res(v) - 2 res(lca(u, v))
//
// upper-bounds the graph effective resistance and is the quantity GRASS
// uses to rank off-tree edges by spectral distortion.
type PathOracle struct {
	t *SpanningTree

	euler []int32 // node at each Euler tour position
	first []int32 // first occurrence of each node in the tour (-1 if absent)
	depth []int32 // depth of euler[i]

	// Sparse table: table[k][i] = index (into euler) of the min-depth
	// position in [i, i + 2^k).
	table [][]int32
	log2  []int8

	resToRoot []float64
	comp      []int32 // component id per node
}

// NewPathOracle preprocesses the given spanning forest.
func NewPathOracle(t *SpanningTree) *PathOracle {
	n := t.G.NumNodes()
	o := &PathOracle{
		t:         t,
		first:     make([]int32, n),
		resToRoot: make([]float64, n),
		comp:      make([]int32, n),
	}
	for i := range o.first {
		o.first[i] = -1
	}

	// Children lists from the rooted representation.
	children := make([][]int32, n)
	for _, v := range t.Order {
		if p := t.Parent[v]; p >= 0 {
			children[p] = append(children[p], int32(v))
		}
	}

	// resToRoot and component labels follow the BFS order (parents first).
	for ci, root := range t.Roots {
		o.comp[root] = int32(ci)
		o.resToRoot[root] = 0
	}
	for _, v := range t.Order {
		p := t.Parent[v]
		if p < 0 {
			continue
		}
		o.comp[v] = o.comp[p]
		o.resToRoot[v] = o.resToRoot[p] + 1/t.G.Edge(t.ParentEdge[v]).W
	}

	// Iterative Euler tour per root.
	o.euler = make([]int32, 0, 2*n)
	o.depth = make([]int32, 0, 2*n)
	type frame struct {
		node  int32
		child int
	}
	stack := make([]frame, 0, 64)
	for _, root := range t.Roots {
		stack = append(stack[:0], frame{node: int32(root)})
		o.visit(int32(root))
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child < len(children[f.node]) {
				c := children[f.node][f.child]
				f.child++
				stack = append(stack, frame{node: c})
				o.visit(c)
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					o.visit(stack[len(stack)-1].node)
				}
			}
		}
	}

	// Sparse table over the Euler depths.
	m := len(o.euler)
	o.log2 = make([]int8, m+1)
	for i := 2; i <= m; i++ {
		o.log2[i] = o.log2[i/2] + 1
	}
	levels := int(o.log2[m]) + 1
	if m == 0 {
		levels = 1
	}
	o.table = make([][]int32, levels)
	base := make([]int32, m)
	for i := range base {
		base[i] = int32(i)
	}
	o.table[0] = base
	for k := 1; k < levels; k++ {
		span := 1 << k
		prev := o.table[k-1]
		cur := make([]int32, m-span+1)
		for i := range cur {
			a, b := prev[i], prev[i+span/2]
			if o.depth[a] <= o.depth[b] {
				cur[i] = a
			} else {
				cur[i] = b
			}
		}
		o.table[k] = cur
	}
	return o
}

func (o *PathOracle) visit(v int32) {
	if o.first[v] == -1 {
		o.first[v] = int32(len(o.euler))
	}
	o.euler = append(o.euler, v)
	o.depth = append(o.depth, int32(o.t.Depth[v]))
}

// LCA returns the lowest common ancestor of u and v in the forest, or -1 if
// they are in different components.
func (o *PathOracle) LCA(u, v int) int {
	if o.comp[u] != o.comp[v] {
		return -1
	}
	if u == v {
		return u
	}
	a, b := o.first[u], o.first[v]
	if a > b {
		a, b = b, a
	}
	k := o.log2[b-a+1]
	i1 := o.table[k][a]
	i2 := o.table[k][b-(1<<k)+1]
	if o.depth[i1] <= o.depth[i2] {
		return int(o.euler[i1])
	}
	return int(o.euler[i2])
}

// Resistance returns the tree-path effective resistance between u and v,
// or +Inf when they lie in different components of the forest.
func (o *PathOracle) Resistance(u, v int) float64 {
	if u == v {
		return 0
	}
	l := o.LCA(u, v)
	if l < 0 {
		return math.Inf(1)
	}
	return o.resToRoot[u] + o.resToRoot[v] - 2*o.resToRoot[l]
}

// PathEdges returns the host-graph edge indices along the tree path from u
// to v (empty for u == v, nil for different components). It is O(path
// length) and used when the update phase needs to redistribute the weight
// of a discarded intra-cluster edge over the path it shorts out.
func (o *PathOracle) PathEdges(u, v int) []int {
	if u == v {
		return []int{}
	}
	l := o.LCA(u, v)
	if l < 0 {
		return nil
	}
	var out []int
	for x := u; x != l; x = o.t.Parent[x] {
		out = append(out, o.t.ParentEdge[x])
	}
	// Collect v's side, then reverse it so edges run u -> v.
	start := len(out)
	for x := v; x != l; x = o.t.Parent[x] {
		out = append(out, o.t.ParentEdge[x])
	}
	for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
