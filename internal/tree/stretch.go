package tree

import "math"

// StretchStats summarizes the stretch of a graph's edges with respect to a
// spanning tree. The stretch of edge e = (u, v, w) is w * R_T(u, v): the
// ratio of the tree-path resistance to the edge's own resistance 1/w.
// Tree edges have stretch exactly 1; the total and average off-tree stretch
// are the standard quality measures for low-stretch trees.
type StretchStats struct {
	Total   float64 // sum of stretches over all edges
	Max     float64
	Mean    float64
	OffTree int // number of off-tree edges measured
}

// Stretch computes stretch statistics of every host-graph edge with respect
// to the forest. Edges whose endpoints fall in different forest components
// are skipped (they have infinite stretch; a spanning tree of a connected
// graph never produces them).
func Stretch(t *SpanningTree, o *PathOracle) StretchStats {
	var st StretchStats
	mask := t.InTree()
	count := 0
	for ei, e := range t.G.Edges() {
		var s float64
		if mask[ei] {
			s = 1
		} else {
			r := o.Resistance(e.U, e.V)
			if math.IsInf(r, 1) {
				continue
			}
			s = e.W * r
			st.OffTree++
		}
		st.Total += s
		if s > st.Max {
			st.Max = s
		}
		count++
	}
	if count > 0 {
		st.Mean = st.Total / float64(count)
	}
	return st
}
