package tree

import (
	"math"
	"testing"
	"testing/quick"

	"ingrass/internal/vecmath"
)

// Property: every spanning-tree construction yields exactly N-1 edges and
// one component on connected inputs, for all three algorithms.
func TestSpanningProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(30, 45, seed)
		for _, st := range []*SpanningTree{
			MaxWeight(g), Prim(g), LowStretch(g, seed),
		} {
			if !st.IsSpanning() {
				return false
			}
			// Depth/parent consistency.
			for v := 0; v < g.NumNodes(); v++ {
				p := st.Parent[v]
				if p == -1 {
					if st.Depth[v] != 0 {
						return false
					}
					continue
				}
				if st.Depth[v] != st.Depth[p]+1 {
					return false
				}
				e := g.Edge(st.ParentEdge[v])
				if !((e.U == v && e.V == p) || (e.V == v && e.U == p)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Kruskal max-weight trees are at least as heavy as low-stretch
// trees (max-weight is optimal in total weight).
func TestMaxWeightOptimalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(25, 40, seed)
		kw := MaxWeight(g).TotalWeight()
		ls := LowStretch(g, seed).TotalWeight()
		return kw >= ls-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the path oracle's resistance is a metric on the tree —
// symmetric, zero iff identical, triangle inequality (exact on trees).
func TestTreeMetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(20, 30, seed)
		o := NewPathOracle(MaxWeight(g))
		r := vecmath.NewRNG(seed ^ 0xff)
		for k := 0; k < 20; k++ {
			a, b, c := r.Intn(20), r.Intn(20), r.Intn(20)
			rab := o.Resistance(a, b)
			rba := o.Resistance(b, a)
			if rab != rba {
				return false
			}
			if (a == b) != (rab == 0) {
				return false
			}
			if o.Resistance(a, c) > rab+o.Resistance(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LCA is the deepest common ancestor: it is an ancestor of both
// nodes and its children toward each node differ.
func TestLCACorrectnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(24, 36, seed)
		st := MaxWeight(g)
		o := NewPathOracle(st)
		ancestors := func(v int) []int {
			var out []int
			for x := v; x != -1; x = st.Parent[x] {
				out = append(out, x)
			}
			return out
		}
		r := vecmath.NewRNG(seed ^ 0xabc)
		for k := 0; k < 15; k++ {
			u, v := r.Intn(24), r.Intn(24)
			l := o.LCA(u, v)
			// Brute force: deepest common node of ancestor chains.
			au := ancestors(u)
			av := ancestors(v)
			inU := map[int]bool{}
			for _, x := range au {
				inU[x] = true
			}
			best, bestDepth := -1, -1
			for _, x := range av {
				if inU[x] && st.Depth[x] > bestDepth {
					best, bestDepth = x, st.Depth[x]
				}
			}
			if l != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: total stretch of tree edges equals the tree edge count (each
// contributes exactly 1).
func TestTreeEdgeStretchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(15, 0, seed) // tree-only graph
		st := MaxWeight(g)
		o := NewPathOracle(st)
		s := Stretch(st, o)
		return s.OffTree == 0 && math.Abs(s.Total-float64(g.NumEdges())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
