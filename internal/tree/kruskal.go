package tree

import (
	"sort"

	"ingrass/internal/graph"
)

// MaxWeight builds the maximum-weight spanning forest by Kruskal's
// algorithm. In the conductance model an edge's resistance is 1/w, so the
// maximum-weight tree is exactly the minimum-resistance tree — the standard
// practical stand-in for a low-stretch tree in the GRASS line of work.
//
// Ties are broken by edge index, making the result deterministic.
func MaxWeight(g *graph.Graph) *SpanningTree {
	m := g.NumEdges()
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	edges := g.Edges()
	sort.SliceStable(order, func(a, b int) bool {
		return edges[order[a]].W > edges[order[b]].W
	})
	uf := graph.NewUnionFind(g.NumNodes())
	keep := make([]int, 0, g.NumNodes()-1)
	for _, ei := range order {
		e := edges[ei]
		if uf.Union(e.U, e.V) {
			keep = append(keep, ei)
			if uf.Count() == 1 {
				break
			}
		}
	}
	return New(g, keep)
}

// Prim builds the maximum-weight spanning forest by Prim's algorithm with a
// binary heap, starting from node 0 (and restarting per component). It
// produces a tree of the same total weight as Kruskal on distinct-weight
// inputs and exists both as an independent cross-check in tests and because
// its traversal order (root-outward) is occasionally preferable.
func Prim(g *graph.Graph) *SpanningTree {
	n := g.NumNodes()
	inTree := make([]bool, n)
	keep := make([]int, 0, n-1)

	// Max-heap of candidate arcs keyed by weight.
	type item struct {
		w    float64
		node int
		edge int
	}
	heap := make([]item, 0, g.NumEdges())
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].w >= heap[i].w {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].w > heap[big].w {
				big = l
			}
			if r < len(heap) && heap[r].w > heap[big].w {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
		return top
	}

	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		inTree[start] = true
		for _, a := range g.Adj(start) {
			push(item{w: g.Edge(a.Edge).W, node: a.To, edge: a.Edge})
		}
		for len(heap) > 0 {
			it := pop()
			if inTree[it.node] {
				continue
			}
			inTree[it.node] = true
			keep = append(keep, it.edge)
			for _, a := range g.Adj(it.node) {
				if !inTree[a.To] {
					push(item{w: g.Edge(a.Edge).W, node: a.To, edge: a.Edge})
				}
			}
		}
	}
	return New(g, keep)
}
