module ingrass

go 1.24
