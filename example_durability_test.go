package ingrass_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"ingrass"
)

// Example_durability walks the durable service lifecycle end to end: start
// a service with a data directory, apply writes (each batch is logged to
// the write-ahead log before its generation becomes visible), take an
// explicit checkpoint, apply more writes on top of it, stop the process,
// and reload — the restarted service resumes at the exact generation the
// first one reached, without re-running GRASS setup.
func Example_durability() {
	dir, err := os.MkdirTemp("", "ingrass-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 4x4 grid graph.
	g := ingrass.NewGraph(16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j+1 < 4 {
				g.AddEdge(4*i+j, 4*i+j+1, 1)
			}
			if i+1 < 4 {
				g.AddEdge(4*i+j, 4*(i+1)+j, 1)
			}
		}
	}

	opts := ingrass.ServiceOptions{
		Options:  ingrass.Options{InitialDensity: 0.2, Seed: 1},
		MaxBatch: 1, // flush (and log) every request individually
		DataDir:  dir,
	}
	svc, err := ingrass.NewService(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	if _, err := svc.AddEdges(ctx, []ingrass.Edge{{U: 0, V: 15, W: 2}, {U: 3, V: 12, W: 1}}); err != nil {
		log.Fatal(err)
	}
	ckGen, err := svc.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	// This write lives only in the WAL tail; recovery must replay it.
	if _, err := svc.AddEdges(ctx, []ingrass.Edge{{U: 5, V: 10, W: 0.5}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation before restart: %d (checkpoint covers %d)\n", svc.Generation(), ckGen)
	svc.Close()

	re, err := ingrass.LoadService(ingrass.ServiceOptions{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	fmt.Printf("recovered generation: %d\n", re.Generation())
	fmt.Printf("recovered graph: %d nodes, %d edges\n", st.Nodes, st.GraphEdges)

	b := make([]float64, 16)
	b[0], b[15] = 1, -1
	_, stats, err := re.Solve(ctx, b, ingrass.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve on recovered state converged: %v\n", stats.Converged)

	// Output:
	// generation before restart: 2 (checkpoint covers 1)
	// recovered generation: 2
	// recovered graph: 16 nodes, 27 edges
	// solve on recovered state converged: true
}
