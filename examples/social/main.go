// Streaming social-network scenario: a preferential-attachment graph keeps
// receiving new links. A spectral sparsifier maintained incrementally
// bounds the memory of downstream spectral analytics (clustering,
// personalized PageRank) while the network grows. Demonstrates long-stream
// maintenance with periodic Resparsify to restore embedding fidelity.
//
//	go run ./examples/social [-n 20000] [-batches 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ingrass"
)

func main() {
	n := flag.Int("n", 20000, "number of users")
	batches := flag.Int("batches", 12, "link batches to stream")
	flag.Parse()

	g, err := ingrass.GenerateBarabasiAlbert(*n, 4, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d links\n", g.NumNodes(), g.NumEdges())

	inc, err := ingrass.NewIncremental(g, ingrass.Options{
		InitialDensity: 0.10,
		TargetCond:     200, // analytics tolerate a looser approximation
		Seed:           9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d links (%.1f%% of graph)\n",
		inc.Sparsifier().NumEdges(), 100*float64(inc.Sparsifier().NumEdges())/float64(g.NumEdges()))

	stream, err := ingrass.NewEdgeStream(g, g.NumEdges()/4, *batches, false, 10)
	if err != nil {
		log.Fatal(err)
	}
	var updateTotal time.Duration
	included := 0
	for i, batch := range stream {
		t0 := time.Now()
		rep, err := inc.AddEdges(batch)
		if err != nil {
			log.Fatal(err)
		}
		updateTotal += time.Since(t0)
		included += rep.Included

		// Halfway through a long stream, rebuild the resistance embedding
		// from the current sparsifier: edge accumulation slowly invalidates
		// the setup-phase estimates.
		if i == *batches/2 {
			t1 := time.Now()
			if err := inc.Resparsify(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  (resparsify after batch %d: %v)\n", i+1, time.Since(t1).Round(time.Millisecond))
		}
	}
	fmt.Printf("streamed %d new links in %v; kept %d (%.1f%%), sparsifier now %d links\n",
		g.NumEdges()/4*1, updateTotal.Round(time.Microsecond), included,
		100*float64(included)/float64(g.NumEdges()/4),
		inc.Sparsifier().NumEdges())

	k, err := ingrass.ConditionNumber(inc.Original(), inc.Sparsifier(), 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final kappa(G, H) ~= %.1f\n", k)
}
