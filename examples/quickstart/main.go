// Quickstart: build a small graph, sparsify it, stream in new edges
// incrementally, and watch the sparsifier track the graph's spectrum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ingrass"
)

func main() {
	// A 32x32 grid graph: 1024 nodes, ~2k edges. Think of it as a coarse
	// power grid or mesh.
	g, err := ingrass.GeneratePowerGrid(32, 32, 0.05, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// One-shot sparsification (GRASS-style, from scratch): spanning tree
	// plus the 10% most spectrally-critical off-tree edges.
	h, err := ingrass.Sparsify(g, 0.10, 42)
	if err != nil {
		log.Fatal(err)
	}
	k, err := ingrass.ConditionNumber(g, h, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot sparsifier: %d edges, kappa(G,H) ~= %.1f\n", h.NumEdges(), k)

	// Incremental mode: the setup phase builds the multilevel resistance
	// embedding once; after that each new edge costs O(log N).
	inc, err := ingrass.NewIncremental(g, ingrass.Options{
		InitialDensity: 0.10,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream 3 batches of new edges into the graph: local stitching wires,
	// the typical incremental-change pattern in physical design.
	stream, err := ingrass.NewEdgeStream(g, 150, 3, true, 7)
	if err != nil {
		log.Fatal(err)
	}
	for i, batch := range stream {
		rep, err := inc.AddEdges(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %3d new edges -> %2d included, %2d merged, %2d redistributed (density %.1f%%)\n",
			i+1, rep.Processed, rep.Included, rep.Merged, rep.Redistributed, 100*inc.Density())
	}

	kAfter, err := ingrass.ConditionNumber(inc.Original(), inc.Sparsifier(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after stream: sparsifier has %d edges, kappa ~= %.1f (target %.1f)\n",
		inc.Sparsifier().NumEdges(), kAfter, k)
}
