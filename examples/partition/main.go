// Spectral partitioning through a sparsifier: the classic "sparsify, then
// run your spectral algorithm on the sparse graph" workflow. We bisect a
// dense proximity graph twice — once on the full graph, once computing the
// Fiedler vector on an incrementally-maintained 10%-density sparsifier —
// and compare cut quality and runtime, then stream updates and
// re-partition cheaply.
//
//	go run ./examples/partition [-n 6000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ingrass"
)

func main() {
	n := flag.Int("n", 6000, "point count for the geometric graph")
	flag.Parse()

	// A dense proximity graph (~40 neighbors per node): the regime where
	// running spectral algorithms on a 10%-density sparsifier pays off.
	g, err := ingrass.GenerateRandomGeometric(*n, 0.05, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geometric graph: %d nodes, %d edges (avg degree %.1f)\n",
		g.NumNodes(), g.NumEdges(), 2*float64(g.NumEdges())/float64(g.NumNodes()))

	inc, err := ingrass.NewIncremental(g, ingrass.Options{InitialDensity: 0.10, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d edges (%.0f%% of graph)\n",
		inc.Sparsifier().NumEdges(),
		100*float64(inc.Sparsifier().NumEdges())/float64(g.NumEdges()))

	t0 := time.Now()
	full, err := ingrass.SpectralBisect(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	tFull := time.Since(t0)

	t0 = time.Now()
	viaH, err := ingrass.SpectralBisectSparsified(inc.Original(), inc.Sparsifier(), 1)
	if err != nil {
		log.Fatal(err)
	}
	tSparse := time.Since(t0)

	fmt.Printf("full graph:  cut %.1f, conductance %.5f, %v\n", full.CutWeight, full.Conductance, tFull.Round(time.Millisecond))
	fmt.Printf("sparsified:  cut %.1f, conductance %.5f, %v (%.1fx faster)\n",
		viaH.CutWeight, viaH.Conductance, tSparse.Round(time.Millisecond),
		float64(tFull)/float64(tSparse))

	// Stream new proximity edges, update the sparsifier, re-partition.
	stream, err := ingrass.NewEdgeStream(g, g.NumEdges()/10, 1, true, 12)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inc.AddEdges(stream[0]); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	after, err := ingrass.SpectralBisectSparsified(inc.Original(), inc.Sparsifier(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d updates: cut %.1f, re-partitioned via sparsifier in %v\n",
		len(stream[0]), after.CutWeight, time.Since(t0).Round(time.Millisecond))
}
