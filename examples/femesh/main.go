// Finite-element mesh refinement scenario: an FE solver keeps a spectral
// sparsifier of its stiffness-pattern graph as a preconditioner skeleton.
// Adaptive refinement adds elements (edges) near a feature; the sparsifier
// follows along incrementally, and we verify the Laplacian quadratic form
// of the sparsifier stays close to the full mesh on smooth test fields.
//
//	go run ./examples/femesh [-side 150] [-rounds 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"ingrass"
)

func main() {
	side := flag.Int("side", 150, "mesh side (side x side nodes)")
	rounds := flag.Int("rounds", 6, "refinement rounds")
	flag.Parse()

	// Graded triangular mesh: refinement concentrated toward row 0, as in
	// boundary-layer meshes (the NACA15 analog in the benchmark registry).
	g, err := ingrass.GenerateTriMesh(*side, *side, 2.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FE mesh: %d nodes, %d element edges\n", g.NumNodes(), g.NumEdges())

	inc, err := ingrass.NewIncremental(g, ingrass.Options{InitialDensity: 0.10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Each refinement round adds local edges (new element connectivity).
	perRound := g.NumEdges() / 40
	stream, err := ingrass.NewEdgeStream(g, perRound*(*rounds), *rounds, true, 4)
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for i, batch := range stream {
		t0 := time.Now()
		rep, err := inc.AddEdges(batch)
		if err != nil {
			log.Fatal(err)
		}
		total += time.Since(t0)
		fmt.Printf("refinement %d: %4d edges -> %3d kept in sparsifier\n", i+1, rep.Processed, rep.Included)
	}
	fmt.Printf("all refinements absorbed in %v; density %.1f%%\n",
		total.Round(time.Microsecond), 100*inc.Density())

	// Smooth-field check: for low-frequency displacement fields x, the
	// sparsifier's energy x'L_H x should approximate the full mesh energy
	// x'L_G x — that is exactly what "spectral" sparsification promises.
	gFull := inc.Original()
	h := inc.Sparsifier()
	n := gFull.NumNodes()
	worst := 0.0
	for mode := 1; mode <= 3; mode++ {
		x := make([]float64, n)
		for v := range x {
			row := v / *side
			x[v] = math.Sin(math.Pi * float64(mode) * float64(row) / float64(*side))
		}
		qg, err := gFull.QuadraticForm(x)
		if err != nil {
			log.Fatal(err)
		}
		qh, err := h.QuadraticForm(x)
		if err != nil {
			log.Fatal(err)
		}
		ratio := qg / qh
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("mode %d: full-mesh energy %.4g, sparsifier energy %.4g (ratio %.2f)\n",
			mode, qg, qh, ratio)
	}
	fmt.Printf("worst smooth-mode energy ratio: %.2f (1.0 = perfect)\n", worst)
}
