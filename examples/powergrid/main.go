// Power-grid ECO scenario: an on-chip power delivery network receives
// engineering change orders that add stitching wires. The sparsified model
// used for vectorless verification must track the grid without being
// recomputed after each ECO — the motivating application from the paper's
// introduction.
//
//	go run ./examples/powergrid [-rows 120] [-cols 120] [-ecos 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ingrass"
)

func main() {
	rows := flag.Int("rows", 120, "grid rows")
	cols := flag.Int("cols", 120, "grid cols")
	ecos := flag.Int("ecos", 8, "number of ECO batches")
	flag.Parse()

	g, err := ingrass.GeneratePowerGrid(*rows, *cols, 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power grid: %d nodes, %d wires\n", g.NumNodes(), g.NumEdges())

	// Freeze a copy of the sparsifier to show what happens WITHOUT updates.
	setupStart := time.Now()
	inc, err := ingrass.NewIncremental(g, ingrass.Options{InitialDensity: 0.10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup (sparsifier + resistance embedding): %v, filter level %d\n",
		time.Since(setupStart).Round(time.Millisecond), inc.FilterLevel())
	frozen := inc.Sparsifier().Clone()

	// Each ECO adds short stitching wires near existing nodes (local
	// stream) — the incremental-wire pattern of physical design.
	perECO := g.NumEdges() / 50
	stream, err := ingrass.NewEdgeStream(g, perECO*(*ecos), *ecos, true, 2)
	if err != nil {
		log.Fatal(err)
	}

	var updateTotal time.Duration
	for i, batch := range stream {
		t0 := time.Now()
		rep, err := inc.AddEdges(batch)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		updateTotal += dt
		fmt.Printf("ECO %2d: %4d wires in %8v -> +%d sparsifier edges (density %.1f%%)\n",
			i+1, rep.Processed, dt.Round(time.Microsecond), rep.Included, 100*inc.Density())
	}
	fmt.Printf("total update time for %d ECOs: %v\n", *ecos, updateTotal.Round(time.Microsecond))

	// Quality check: the maintained sparsifier vs the frozen one.
	fmt.Println("estimating condition numbers (the slow part — only done for reporting)...")
	kUpdated, err := ingrass.ConditionNumber(inc.Original(), inc.Sparsifier(), 3)
	if err != nil {
		log.Fatal(err)
	}
	kFrozen, err := ingrass.ConditionNumber(inc.Original(), frozen, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kappa with incremental updates: %.1f\n", kUpdated)
	fmt.Printf("kappa with frozen sparsifier:   %.1f  (%.1fx worse)\n",
		kFrozen, kFrozen/kUpdated)
}
