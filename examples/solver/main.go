// Sparsifier-preconditioned solver: the downstream payoff of maintaining a
// spectral sparsifier. We solve Laplacian systems L_G x = b (the core
// kernel of DC power-grid analysis) with the sparsifier as preconditioner,
// keep streaming new wires into the grid, and watch the solve cost stay
// flat because the incrementally-updated sparsifier keeps tracking G.
//
//	go run ./examples/solver [-rows 100] [-cols 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"ingrass"
)

func main() {
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	flag.Parse()

	g, err := ingrass.GeneratePowerGrid(*rows, *cols, 0.05, 5)
	if err != nil {
		log.Fatal(err)
	}
	n := g.NumNodes()
	fmt.Printf("power grid: %d nodes, %d wires\n", n, g.NumEdges())

	inc, err := ingrass.NewIncremental(g, ingrass.Options{InitialDensity: 0.12, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Current injection: +1 at one corner, -1 at the other (a two-pin DC
	// analysis), mean-zero as Laplacian systems require.
	b := make([]float64, n)
	b[0] = 1
	b[n-1] = -1

	solve := func(tag string) {
		start := time.Now()
		x, stats, err := ingrass.SolveLaplacian(context.Background(), inc.Original(), inc.Sparsifier(), b, ingrass.SolveOptions{Tol: 1e-8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %3d outer iters, %d inner solves, residual %.1e, V(drop)=%.4f, %v\n",
			tag, stats.Iterations, stats.PrecondUses, stats.Residual,
			x[0]-x[n-1], time.Since(start).Round(time.Millisecond))
	}

	solve("initial grid      ")

	// Stream several rounds of new wires, updating the sparsifier, and
	// re-solve: iteration counts stay flat because kappa(G, H) does.
	for round := 1; round <= 3; round++ {
		stream, err := ingrass.NewEdgeStream(inc.Original(), g.NumEdges()/20, 1, true, uint64(round))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := inc.AddEdges(stream[0]); err != nil {
			log.Fatal(err)
		}
		solve(fmt.Sprintf("after wire batch %d", round))
	}
}
