package ingrass

import (
	"fmt"
	"io"

	"ingrass/internal/graph"
)

// Edge is a weighted undirected edge between node indices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected multigraph over nodes 0..N-1. Unlike the
// internal representation, public mutators return errors instead of
// panicking.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{g: graph.New(n, 0)}
}

// wrap adopts an internal graph.
func wrap(g *graph.Graph) *Graph { return &Graph{g: g} }

// NumNodes returns the node count.
func (p *Graph) NumNodes() int { return p.g.NumNodes() }

// NumEdges returns the edge count (parallel edges counted separately).
func (p *Graph) NumEdges() int { return p.g.NumEdges() }

// TotalWeight returns the sum of edge weights.
func (p *Graph) TotalWeight() float64 { return p.g.TotalWeight() }

// AddNode appends an isolated node and returns its index.
func (p *Graph) AddNode() int { return p.g.AddNode() }

// AddEdge inserts edge (u, v) with weight w and returns its index. It
// rejects self-loops, out-of-range endpoints, and non-positive weights.
func (p *Graph) AddEdge(u, v int, w float64) (int, error) {
	n := p.g.NumNodes()
	if u < 0 || u >= n || v < 0 || v >= n {
		return -1, fmt.Errorf("ingrass: endpoint out of range: (%d, %d) with %d nodes", u, v, n)
	}
	if u == v {
		return -1, fmt.Errorf("ingrass: self-loop (%d, %d) rejected", u, v)
	}
	if !(w > 0) {
		return -1, fmt.Errorf("ingrass: weight %v must be positive", w)
	}
	return p.g.AddEdge(u, v, w), nil
}

// Edges returns a copy of the edge list.
func (p *Graph) Edges() []Edge {
	out := make([]Edge, p.g.NumEdges())
	for i, e := range p.g.Edges() {
		out[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// Edge returns the i-th edge.
func (p *Graph) Edge(i int) (Edge, error) {
	if i < 0 || i >= p.g.NumEdges() {
		return Edge{}, fmt.Errorf("ingrass: edge index %d out of range", i)
	}
	e := p.g.Edge(i)
	return Edge{U: e.U, V: e.V, W: e.W}, nil
}

// HasEdge reports whether u and v are adjacent.
func (p *Graph) HasEdge(u, v int) bool { return p.g.HasEdge(u, v) }

// Degree returns the number of edges incident to u.
func (p *Graph) Degree(u int) int { return p.g.Degree(u) }

// Clone returns a deep copy.
func (p *Graph) Clone() *Graph { return wrap(p.g.Clone()) }

// IsConnected reports whether the graph has one connected component.
func (p *Graph) IsConnected() bool { return graph.IsConnected(p.g) }

// QuadraticForm evaluates x' L x for the graph Laplacian L.
func (p *Graph) QuadraticForm(x []float64) (float64, error) {
	if len(x) != p.g.NumNodes() {
		return 0, fmt.Errorf("ingrass: vector length %d != %d nodes", len(x), p.g.NumNodes())
	}
	return p.g.QuadraticForm(x), nil
}

// OffTreeDensity returns the paper's sparsifier density measure of p
// relative to an original graph with originalEdges edges:
// (|E| - (N-1)) / originalEdges.
func (p *Graph) OffTreeDensity(originalEdges int) float64 {
	return graph.OffTreeDensity(p.g.NumEdges(), p.g.NumNodes(), originalEdges)
}

// Write serializes the graph in the text edge-list format
// ("N M" header, then "u v w" lines; '#' comments allowed).
func (p *Graph) Write(w io.Writer) error { return graph.Write(w, p.g) }

// ReadGraph parses a graph in the text edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// String summarizes the graph.
func (p *Graph) String() string { return p.g.String() }
