package ingrass

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func serviceGrid(t testing.TB, rows, cols int) *Graph {
	t.Helper()
	g := NewGraph(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				if _, err := g.AddEdge(id(i, j), id(i, j+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if i+1 < rows {
				if _, err := g.AddEdge(id(i, j), id(i+1, j), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func newTestService(t testing.TB) *Service {
	t.Helper()
	svc, err := NewService(serviceGrid(t, 8, 8), ServiceOptions{
		Options: Options{InitialDensity: 0.1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func TestServiceWriteReadCycle(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if gen := svc.Generation(); gen != 0 {
		t.Fatalf("initial generation %d", gen)
	}
	res, err := svc.AddEdges(ctx, []Edge{{U: 0, V: 63, W: 2}, {U: 7, V: 56, W: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation == 0 || res.Included+res.Merged+res.Redistributed != 2 {
		t.Fatalf("write result %+v", res)
	}

	g, gen := svc.OriginalSnapshot()
	if gen < res.Generation || !g.HasEdge(0, 63) {
		t.Fatalf("write not visible: gen=%d", gen)
	}

	b := make([]float64, 64)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x, st, err := svc.Solve(context.Background(), b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Generation != gen {
		t.Fatalf("solve stats %+v at gen %d", st, gen)
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	if math.Abs(mean/64) > 1e-9 {
		t.Fatalf("solution not mean-zero: %v", mean)
	}

	r, rGen, err := svc.EffectiveResistance(context.Background(), 0, 1)
	if err != nil || !(r > 0) || rGen != gen {
		t.Fatalf("resistance %v at gen %d, %v", r, rGen, err)
	}
	k, err := svc.ConditionNumber(context.Background(), 1)
	if err != nil || k < 1 {
		t.Fatalf("kappa %v, %v", k, err)
	}

	h, hGen := svc.SparsifierSnapshot()
	if hGen != gen || h.NumNodes() != 64 || !h.IsConnected() {
		t.Fatalf("sparsifier snapshot gen=%d nodes=%d", hGen, h.NumNodes())
	}
	if _, ok := svc.SparsifierAt(hGen); !ok {
		t.Fatal("current generation not addressable")
	}

	del, err := svc.DeleteEdges(ctx, []Edge{{U: 0, V: 63}})
	if err != nil || del.Deleted != 1 {
		t.Fatalf("delete %+v, %v", del, err)
	}

	stats := svc.Stats()
	if stats.Solves == 0 || stats.WriteRequests < 2 || stats.Nodes != 64 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestServiceSnapshotOutlivesWrites(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	h0, gen0 := svc.SparsifierSnapshot()
	edges0 := h0.NumEdges()
	weight0 := h0.TotalWeight()
	for i := 0; i < 5; i++ {
		if _, err := svc.AddEdges(ctx, []Edge{{U: i, V: 63 - i, W: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Generation() == gen0 {
		t.Fatal("generation did not advance")
	}
	if h0.NumEdges() != edges0 || h0.TotalWeight() != weight0 {
		t.Fatal("old snapshot mutated by later writes")
	}
}

// TestServiceSnapshotMutationIsPrivate guards the public accessor contract:
// each caller gets a private copy-on-write handle, so mutating it never
// corrupts the published generation that other readers (and the engine's
// cached solve state) still reference — even with readers racing.
func TestServiceSnapshotMutationIsPrivate(t *testing.T) {
	svc := newTestService(t)
	h1, gen := svc.SparsifierSnapshot()
	edges := h1.NumEdges()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				hr, ok := svc.SparsifierAt(gen)
				if !ok || hr.NumEdges() != edges {
					t.Errorf("published generation changed under a caller mutation")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := h1.AddEdge(i, 63-i, 42); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if h1.NumEdges() != edges+20 {
		t.Fatalf("caller handle has %d edges, want %d", h1.NumEdges(), edges+20)
	}
	h2, _ := svc.SparsifierSnapshot()
	if h2.NumEdges() != edges {
		t.Fatalf("registry sparsifier grew to %d edges after caller mutation", h2.NumEdges())
	}
	g, _ := svc.OriginalSnapshot()
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g2, _ := svc.OriginalSnapshot(); g2.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("original snapshot mutation leaked: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestServiceAsyncWrites(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var pendings []*PendingWrite
	for i := 0; i < 10; i++ {
		p, err := svc.AddEdgesAsync([]Edge{{U: i, V: 32 + i, W: 1 + float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for _, p := range pendings {
		select {
		case <-p.Done():
		default:
			t.Fatal("flush returned with writes still pending")
		}
		if _, err := p.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServiceConcurrentMixedLoad(t *testing.T) {
	svc := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			b := make([]float64, 64)
			for i := range b {
				b[i] = math.Cos(float64(id + i))
			}
			for k := 0; k < 6; k++ {
				if _, st, err := svc.Solve(context.Background(), b, SolveOptions{Tol: 1e-6}); err != nil || !st.Converged {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := svc.AddEdges(ctx, []Edge{{U: i % 64, V: (i + 9) % 64, W: 1.25}}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent load: %v", err)
	}
	stats := svc.Stats()
	if stats.PrecondReuses == 0 {
		t.Fatalf("no preconditioner reuse: %+v", stats)
	}
}
