package ingrass

import "ingrass/internal/solver"

// Typed errors crossing every layer of the solver stack. Match them with
// errors.Is; they survive wrapping through the internal packages.
var (
	// ErrNoConvergence reports that an iterative solve exhausted its
	// iteration budget before reaching the requested tolerance. The partial
	// solution is still returned alongside it.
	ErrNoConvergence = solver.ErrNoConvergence
	// ErrCancelled reports a solve aborted by context cancellation or
	// deadline expiry. The error chain also matches the specific context
	// error (context.Canceled or context.DeadlineExceeded).
	ErrCancelled = solver.ErrCancelled
)
