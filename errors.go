package ingrass

import (
	"errors"

	"ingrass/internal/repl"
	"ingrass/internal/service"
	"ingrass/internal/solver"
	"ingrass/internal/wal"
)

// Typed errors crossing every layer of the solver stack. Match them with
// errors.Is; they survive wrapping through the internal packages.
var (
	// ErrNoConvergence reports that an iterative solve exhausted its
	// iteration budget before reaching the requested tolerance. The partial
	// solution is still returned alongside it.
	ErrNoConvergence = solver.ErrNoConvergence
	// ErrCancelled reports a solve aborted by context cancellation or
	// deadline expiry. The error chain also matches the specific context
	// error (context.Canceled or context.DeadlineExceeded).
	ErrCancelled = solver.ErrCancelled
)

// Typed errors of the durability subsystem.
var (
	// ErrNotDurable accompanies an otherwise-successful write whose
	// write-ahead-log append failed: the write IS applied and visible to
	// readers (the WriteResult alongside is valid), but it would not
	// survive a crash. The condition is sticky — later writes return it
	// too — until a successful Checkpoint captures the full state and
	// restores durability.
	ErrNotDurable = service.ErrNotDurable
	// ErrNoCheckpoint reports a LoadService against a data directory that
	// holds no checkpoint (e.g. one never initialized by NewService).
	ErrNoCheckpoint = wal.ErrNoCheckpoint
	// ErrCorruptData reports unrecoverable damage in the data directory:
	// a failed CRC anywhere other than the torn tail of the final WAL
	// segment (which is repaired silently, since the write it carried was
	// never acknowledged).
	ErrCorruptData = wal.ErrCorrupt
	// ErrDataDirNotEmpty reports a NewService whose DataDir already holds
	// durable state; resume it with LoadService (or point NewService at a
	// fresh directory).
	ErrDataDirNotEmpty = errors.New("ingrass: data directory already holds state; use LoadService")
)

// Typed errors of the maintenance subsystem.
var (
	// ErrRebuildInProgress reports a ForceResparsify while another background
	// re-sparsification (manual or controller-triggered) is already running;
	// at most one basis rebuild is in flight per service.
	ErrRebuildInProgress = service.ErrRebuildInProgress
)

// Typed errors of the replication tier.
var (
	// ErrReadOnlyReplica reports a write (AddEdges, DeleteEdges,
	// ForceResparsify) against a follower Service; writes go to the
	// primary. Served over HTTP as 403.
	ErrReadOnlyReplica = service.ErrReadOnly
	// ErrReplicaStale reports a read against a follower that has been out
	// of contact with its primary longer than FollowOptions.MaxStaleness.
	// The condition is sticky while the partition lasts and heals
	// automatically on reconnect. Served over HTTP as 503.
	ErrReplicaStale = repl.ErrReplicaStale
)
