package ingrass

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/repl"
)

// Replication: a durable Service (one with DataDir) can ship its
// write-ahead log to any number of read-only followers. The primary
// exposes three HTTP handlers (StartReplication); a follower process
// builds its Service with Follow and serves the same read API at its
// applied generation — bit-identical to the primary's state at that
// generation, because records replay through the recovery code path.
// A thin router (internal/repl.Router, `ingrass route`) fans reads across
// healthy followers and forwards writes to the primary.

// ReplicationOptions configures the primary-side shipper.
type ReplicationOptions struct {
	// Heartbeat is the idle-stream heartbeat interval (default 2s).
	Heartbeat time.Duration
	// StreamWindow bounds one tail-streaming response; followers resume
	// seamlessly (default 30s).
	StreamWindow time.Duration
	// RetainCapBytes bounds the checkpoint-covered WAL bytes one follower
	// may pin against pruning; past it the follower is evicted and must
	// re-bootstrap from a checkpoint, so a dead follower cannot wedge GC
	// (default 256 MiB).
	RetainCapBytes int64
	// FollowerTTL expires followers that stopped fetching (default 60s).
	FollowerTTL time.Duration
}

// ReplicationHandlers are the primary's replication endpoints, for the
// caller to mount on its HTTP mux (GET /repl/checkpoint, /repl/segments,
// /repl/status).
type ReplicationHandlers struct {
	Checkpoint http.HandlerFunc
	Segments   http.HandlerFunc
	Status     http.HandlerFunc
}

// StartReplication turns a durable service into a replication primary and
// returns the HTTP handlers to mount. It requires DataDir (the WAL is the
// replication log) and may be called at most once per service.
func (s *Service) StartReplication(opts ReplicationOptions) (*ReplicationHandlers, error) {
	if s.store == nil {
		return nil, fmt.Errorf("ingrass: replication requires a durable service (DataDir)")
	}
	if s.replPrimary != nil {
		return nil, fmt.Errorf("ingrass: replication already started")
	}
	p := repl.NewPrimary(s.store, repl.PrimaryOptions{
		Heartbeat:      opts.Heartbeat,
		StreamWindow:   opts.StreamWindow,
		RetainCapBytes: opts.RetainCapBytes,
		FollowerTTL:    opts.FollowerTTL,
	})
	s.replPrimary = p
	s.metrics.GaugeFunc("ingrass_repl_followers",
		"replication followers currently registered on this primary",
		func() float64 { return float64(p.Followers()) })
	s.metrics.GaugeFunc("ingrass_repl_retained_bytes",
		"checkpoint-covered WAL bytes pinned by the slowest follower",
		func() float64 { return float64(p.RetainedBytes()) })
	s.metrics.CounterFunc("ingrass_repl_follower_evictions_total",
		"followers evicted by TTL expiry or the retention cap",
		func() float64 { return float64(p.Evictions()) })
	s.replHandlers = &ReplicationHandlers{
		Checkpoint: p.HandleCheckpoint,
		Segments:   p.HandleSegments,
		Status:     p.HandleStatus,
	}
	return s.replHandlers, nil
}

// Replication returns the handlers from a prior StartReplication, or nil.
func (s *Service) Replication() *ReplicationHandlers { return s.replHandlers }

// FollowOptions configures a follower Service.
type FollowOptions struct {
	// Primary is the primary's base URL (e.g. http://127.0.0.1:8080).
	Primary string
	// ID is the stable identity the primary keys segment retention on; an
	// empty ID follows anonymously (the primary may prune past it, forcing
	// checkpoint re-bootstraps).
	ID string
	// MaxStaleness bounds how long reads keep being served after contact
	// with the primary is lost: past it, reads fail with ErrReplicaStale
	// until the connection heals. 0 serves the last applied generation
	// indefinitely.
	MaxStaleness time.Duration
	// FetchTimeout bounds one checkpoint fetch (default 60s).
	FetchTimeout time.Duration
	// BackoffMin and BackoffMax shape the reconnect backoff envelope
	// (defaults 50ms and 10s); BackoffSeed pins its jitter for tests.
	BackoffMin  time.Duration
	BackoffMax  time.Duration
	BackoffSeed int64

	// Workers is the solver-parallelism default, as Options.Workers.
	Workers int
	// RetainSnapshots, Solve, and Batch configure the read side exactly as
	// their ServiceOptions counterparts.
	RetainSnapshots int
	Solve           SolveOptions
	Batch           BatchOptions
}

// Follow bootstraps a read-only follower Service from a replication
// primary: fetch its newest checkpoint, restore, then stream and apply the
// record tail continuously. The call blocks (honoring ctx) until the first
// bootstrap succeeds; the returned Service serves reads immediately and
// converges to the primary's generation in the background. Write methods
// fail with ErrReadOnlyReplica; Close stops replication and the engine.
func Follow(ctx context.Context, opts FollowOptions) (*Service, error) {
	metrics := obs.NewRegistry()
	so := ServiceOptions{
		RetainSnapshots: opts.RetainSnapshots,
		Solve:           opts.Solve,
		Batch:           opts.Batch,
	}
	so.Workers = opts.Workers
	eopts := so.engineOptions(so.Solve)
	eopts.Obs = metrics
	f, err := repl.StartFollower(ctx, repl.FollowerOptions{
		Primary:      opts.Primary,
		ID:           opts.ID,
		Engine:       eopts,
		MaxStaleness: opts.MaxStaleness,
		FetchTimeout: opts.FetchTimeout,
		BackoffMin:   opts.BackoffMin,
		BackoffMax:   opts.BackoffMax,
		BackoffSeed:  opts.BackoffSeed,
	})
	if err != nil {
		return nil, err
	}
	metrics.GaugeFunc("ingrass_repl_lag_generations",
		"generations the replica trails the primary's last heard position",
		func() float64 { return float64(f.LagGenerations()) })
	metrics.GaugeFunc("ingrass_repl_lag_seconds",
		"seconds since the last successful exchange with the primary",
		func() float64 { return f.LagSeconds() })
	metrics.GaugeFunc("ingrass_repl_ready",
		"1 once the first full catch-up with the primary completed",
		func() float64 {
			if f.Ready() {
				return 1
			}
			return 0
		})
	metrics.CounterFunc("ingrass_repl_applied_records_total",
		"primary WAL records applied by this replica",
		func() float64 { return float64(f.Stats().AppliedRecords) })
	metrics.CounterFunc("ingrass_repl_bootstraps_total",
		"checkpoint bootstraps (initial and re-bootstraps after pruning)",
		func() float64 { return float64(f.Stats().Bootstraps) })
	metrics.CounterFunc("ingrass_repl_fetch_errors_total",
		"failed replication fetches (each one backs off and retries)",
		func() float64 { return float64(f.Stats().FetchErrors) })
	metrics.CounterFunc("ingrass_repl_gap_refusals_total",
		"records refused because their generation did not follow the replica's",
		func() float64 { return float64(f.Stats().GapRefusals) })
	metrics.CounterFunc("ingrass_repl_crc_errors_total",
		"stream frames dropped by CRC or framing verification",
		func() float64 { return float64(f.Stats().CRCErrors) })
	return &Service{
		eng:       f.Engine(),
		metrics:   metrics,
		batchOpts: opts.Batch,
		coalesce:  opts.Batch.CoalesceSingles,
		follower:  f,
	}, nil
}

// Role reports how this service participates in replication: "primary"
// (StartReplication was called), "follower" (built by Follow), or
// "standalone".
func (s *Service) Role() string {
	switch {
	case s.follower != nil:
		return "follower"
	case s.replPrimary != nil:
		return "primary"
	default:
		return "standalone"
	}
}

// Ready reports whether the service should receive routed traffic: always
// true for primaries and standalone services; for followers, true once the
// first full catch-up with the primary completed (sticky). Routers and
// orchestrators use it to keep cold followers out of rotation.
func (s *Service) Ready() bool {
	if s.follower != nil {
		return s.follower.Ready()
	}
	return true
}

// readGate guards follower reads with the staleness bound: a partitioned
// follower keeps serving its last applied generation until MaxStaleness,
// then refuses with ErrReplicaStale until contact with the primary heals.
func (s *Service) readGate() error {
	if s.follower == nil {
		return nil
	}
	if err := s.follower.StaleErr(); err != nil {
		return fmt.Errorf("ingrass: %w", err)
	}
	return nil
}
