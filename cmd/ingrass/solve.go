package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ingrass"
)

// cmdSolve solves the Laplacian system L_G x = b with a sparsifier
// preconditioner — the downstream application the library exists for.
func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	rhs := fs.String("rhs", "", "right-hand-side file, one value per node (required)")
	sparsifier := fs.String("sparsifier", "", "sparsifier file (default: build one with -density)")
	density := fs.Float64("density", 0.1, "sparsifier density when building one")
	seed := fs.Uint64("seed", 1, "random seed")
	tol := fs.Float64("tol", 1e-8, "relative residual target")
	out := fs.String("out", "", "solution output file (default: stdout)")
	_ = fs.Parse(args)
	if *in == "" || *rhs == "" {
		fs.Usage()
		os.Exit(2)
	}
	g := loadGraph(*in)
	b := loadVector(*rhs)
	if len(b) != g.NumNodes() {
		fatal(fmt.Errorf("rhs has %d values for %d nodes", len(b), g.NumNodes()))
	}

	var h *ingrass.Graph
	if *sparsifier != "" {
		h = loadGraph(*sparsifier)
	} else {
		var err error
		start := time.Now()
		h, err = ingrass.Sparsify(g, *density, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "built sparsifier: %d -> %d edges in %v\n",
			g.NumEdges(), h.NumEdges(), time.Since(start).Round(time.Millisecond))
	}

	start := time.Now()
	x, stats, err := ingrass.SolveLaplacian(context.Background(), g, h, b, ingrass.SolveOptions{Tol: *tol})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "solve: %d iterations, residual %.3g, converged=%v, %d precond uses, %v\n",
		stats.Iterations, stats.Residual, stats.Converged, stats.PrecondUses,
		elapsed.Round(time.Microsecond))

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, v := range x {
		fmt.Fprintf(w, "%.17g\n", v)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// loadVector parses a file with one float per line ('#' comments allowed).
func loadVector(path string) []float64 {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal(fmt.Errorf("%s:%d: parse error in %q", path, line, s))
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return out
}
