// Command ingrass sparsifies graphs from the command line.
//
// Sparsify a graph file once (GRASS-style, from scratch):
//
//	ingrass sparsify -in graph.txt -out sparse.txt -density 0.1
//
// Incrementally maintain a sparsifier while streaming edge batches:
//
//	ingrass update -in graph.txt -stream new_edges.txt -batches 10 \
//	       -density 0.1 -out sparse.txt [-kappa]
//
// Solve the Laplacian system L_G x = b with a sparsifier preconditioner:
//
//	ingrass solve -in graph.txt -rhs b.txt [-sparsifier sparse.txt] [-out x.txt]
//
// Serve the concurrent sparsifier service over HTTP (batched writes,
// snapshot-isolated reads). With -data-dir the server is durable: writes
// are logged to a write-ahead log before they become visible, state is
// checkpointed periodically and on shutdown, and a restart recovers the
// exact pre-crash generation:
//
//	ingrass serve -in graph.txt -addr :8080 -density 0.1 \
//	       [-data-dir d/ -fsync always -checkpoint-every 5m]
//
// Replicate a durable server: the primary ships its WAL (-repl), followers
// mirror it bit-exactly and serve reads (-follow), and a router fans reads
// across followers while forwarding writes to the primary:
//
//	ingrass serve -in graph.txt -data-dir d/ -repl -addr :8080
//	ingrass serve -follow http://127.0.0.1:8080 -addr :8081
//	ingrass route -addr :8090 -primary http://127.0.0.1:8080 \
//	       -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Initialize a durable data directory without serving (setup runs once,
// every later start recovers instead):
//
//	ingrass save -in graph.txt -data-dir d/
//
// Recover a data directory, inspect it, and optionally verify a solve or
// export the recovered graphs:
//
//	ingrass load -data-dir d/ [-verify] [-export-h h.txt] [-export-g g.txt]
//
// Graph files use the text edge-list format ("N M" header then "u v w"
// lines; '#' comments). The stream file is a headerless list of "u v w"
// lines, split evenly into the requested number of batches. RHS files hold
// one value per node per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ingrass"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sparsify":
		cmdSparsify(os.Args[2:])
	case "update":
		cmdUpdate(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "route":
		cmdRoute(os.Args[2:])
	case "save":
		cmdSave(os.Args[2:])
	case "load":
		cmdLoad(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "loadgen":
		cmdLoadgen(os.Args[2:])
	case "slow":
		cmdSlow(os.Args[2:])
	case "metricslint":
		cmdMetricsLint(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ingrass <command> [flags]

commands:
  sparsify   build a spectral sparsifier from scratch
  update     incrementally maintain a sparsifier over an edge stream
  solve      solve the Laplacian system L x = b with a sparsifier preconditioner
  serve      run the concurrent sparsifier service over HTTP
             (-repl ships the WAL to followers; -follow joins a primary read-only)
  route      fan reads across follower replicas, forward writes to the primary
  save       initialize a durable data directory from a graph (setup + checkpoint)
  load       recover a data directory; inspect, verify, or export the state
  info       print graph statistics
  bench      run hot-path microbenchmarks; append a run to BENCH_solve.json
  loadgen    drive a serve instance with an open-loop trace workload; report SLOs
  slow       render a server's flight-recorder traces as per-span waterfalls
  metricslint  lint a Prometheus text exposition (stdin or -in) for format violations`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ingrass:", err)
	os.Exit(1)
}

func loadGraph(path string) *ingrass.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := ingrass.ReadGraph(bufio.NewReader(f))
	if err != nil {
		fatal(err)
	}
	return g
}

func saveGraph(path string, g *ingrass.Graph) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		fatal(err)
	}
}

func cmdSparsify(args []string) {
	fs := flag.NewFlagSet("sparsify", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	out := fs.String("out", "", "output sparsifier file (required)")
	density := fs.Float64("density", 0.1, "off-tree edge budget as fraction of |E|")
	seed := fs.Uint64("seed", 1, "random seed")
	kappa := fs.Bool("kappa", false, "also estimate kappa(G, H) (slow on large graphs)")
	_ = fs.Parse(args)
	if *in == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	g := loadGraph(*in)
	start := time.Now()
	h, err := ingrass.Sparsify(g, *density, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sparsified %s: %d nodes, %d -> %d edges (D=%.1f%%) in %v\n",
		*in, g.NumNodes(), g.NumEdges(), h.NumEdges(),
		100*h.OffTreeDensity(g.NumEdges()), time.Since(start).Round(time.Millisecond))
	if *kappa {
		k, err := ingrass.ConditionNumber(g, h, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kappa(G, H) ~= %.1f\n", k)
	}
	saveGraph(*out, h)
}

func cmdUpdate(args []string) {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	streamPath := fs.String("stream", "", "new-edge stream file (required)")
	out := fs.String("out", "", "output sparsifier file (required)")
	batches := fs.Int("batches", 10, "number of update iterations")
	density := fs.Float64("density", 0.1, "initial sparsifier density")
	target := fs.Float64("target", 0, "target condition number (0 = default)")
	seed := fs.Uint64("seed", 1, "random seed")
	kappa := fs.Bool("kappa", false, "estimate kappa before/after (slow)")
	_ = fs.Parse(args)
	if *in == "" || *streamPath == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	g := loadGraph(*in)
	stream := loadStream(*streamPath)

	setupStart := time.Now()
	inc, err := ingrass.NewIncremental(g, ingrass.Options{
		InitialDensity: *density,
		TargetCond:     *target,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	setupTime := time.Since(setupStart)
	fmt.Printf("setup: H(0) with %d edges, filter level %d, %v\n",
		inc.Sparsifier().NumEdges(), inc.FilterLevel(), setupTime.Round(time.Millisecond))

	var kBefore float64
	if *kappa {
		kBefore, err = ingrass.ConditionNumber(inc.Original(), inc.Sparsifier(), *seed)
		if err != nil {
			fatal(err)
		}
	}

	per := (len(stream) + *batches - 1) / *batches
	var updateTime time.Duration
	for b := 0; b*per < len(stream); b++ {
		lo, hi := b*per, (b+1)*per
		if hi > len(stream) {
			hi = len(stream)
		}
		t0 := time.Now()
		rep, err := inc.AddEdges(stream[lo:hi])
		if err != nil {
			fatal(err)
		}
		updateTime += time.Since(t0)
		fmt.Printf("batch %d: %d edges -> %d included, %d merged, %d redistributed\n",
			b+1, rep.Processed, rep.Included, rep.Merged, rep.Redistributed)
	}
	fmt.Printf("updates: %v total; final density %.1f%%\n",
		updateTime.Round(time.Microsecond), 100*inc.Density())
	if *kappa {
		kAfter, err := ingrass.ConditionNumber(inc.Original(), inc.Sparsifier(), *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kappa: %.1f -> %.1f\n", kBefore, kAfter)
	}
	saveGraph(*out, inc.Sparsifier())
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "graph file (required)")
	_ = fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	g := loadGraph(*in)
	fmt.Printf("%s: %s connected=%v totalWeight=%.4g\n",
		*in, g.String(), g.IsConnected(), g.TotalWeight())
}

// loadStream parses a headerless "u v w" edge list.
func loadStream(path string) []ingrass.Edge {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var out []ingrass.Edge
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 3 {
			fatal(fmt.Errorf("%s:%d: want 'u v w', got %q", path, line, s))
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fatal(fmt.Errorf("%s:%d: parse error in %q", path, line, s))
		}
		out = append(out, ingrass.Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return out
}
