package main

import (
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestRunLoadgenEndToEnd drives the full harness against a live test
// server: the generated schedule executes cleanly, every class reports
// ops, and the CI smoke gate passes.
func TestRunLoadgenEndToEnd(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	cfg := loadgenConfig{
		URL:         srv.URL,
		Duration:    500 * time.Millisecond,
		QPS:         200,
		Clients:     4,
		Arrival:     "poisson",
		Mix:         "solve=0.5,resist=0.3,write=0.1,sweep=0.1",
		SweepK:      4,
		Zipf:        1.2,
		Seed:        7,
		Timeout:     30 * time.Second,
		MaxInflight: 256,
		Label:       "test",
	}
	rep, err := runLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps == 0 {
		t.Fatal("no operations executed")
	}
	if rep.Errors != 0 || rep.Timeouts != 0 {
		t.Fatalf("%d errors, %d timeouts; classes %+v", rep.Errors, rep.Timeouts, rep.Classes)
	}
	for _, class := range []string{opClassSolve, opClassResist, opClassWrite, opClassSweep} {
		cr, ok := rep.Classes[class]
		if !ok || cr.Ops == 0 {
			t.Errorf("class %s ran no ops (report %+v)", class, rep.Classes)
			continue
		}
		if cr.OK != cr.Ops {
			t.Errorf("class %s: %d ok of %d ops", class, cr.OK, cr.Ops)
		}
		if !(cr.Latency.P99 > 0) || cr.Latency.Count != cr.OK {
			t.Errorf("class %s latency digest %+v inconsistent with %d ok", class, cr.Latency, cr.OK)
		}
	}
	if msg := smokeViolation(rep); msg != "" {
		t.Errorf("smoke gate: %s", msg)
	}

	// Appending to a fresh SLO file and re-appending must accumulate runs.
	out := filepath.Join(t.TempDir(), "BENCH_slo.json")
	if err := appendSLORun(out, rep); err != nil {
		t.Fatal(err)
	}
	if err := appendSLORun(out, rep); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleDeterminismAndTraceRoundTrip pins the replayability promise:
// same seed, same schedule; a trace written and read back is identical.
func TestScheduleDeterminismAndTraceRoundTrip(t *testing.T) {
	cfg := loadgenConfig{
		Duration: 2 * time.Second,
		QPS:      500,
		Clients:  3,
		Arrival:  "poisson",
		Mix:      "solve=0.6,resist=0.2,write=0.1,sweep=0.1",
		SweepK:   8,
		Zipf:     1.3,
		Seed:     42,
	}
	a, err := generateSchedule(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateSchedule(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := 1; i < len(a); i++ {
		if a[i].AtUS < a[i-1].AtUS {
			t.Fatalf("schedule not time-sorted at %d", i)
		}
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := writeTrace(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("trace round-trip changed the schedule")
	}
}

// TestArrivalRates checks both processes offer approximately the target
// rate: thinning must preserve the mean for bursty arrivals.
func TestArrivalRates(t *testing.T) {
	for _, arrival := range []string{"poisson", "bursty"} {
		cfg := loadgenConfig{
			Duration:    10 * time.Second,
			QPS:         500,
			Clients:     2,
			Arrival:     arrival,
			BurstFactor: 4,
			BurstPeriod: time.Second,
			BurstDuty:   0.25,
			Mix:         "solve=1",
			Seed:        3,
		}
		ops, err := generateSchedule(cfg, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.QPS * cfg.Duration.Seconds()
		got := float64(len(ops))
		if got < 0.8*want || got > 1.2*want {
			t.Errorf("%s: %v ops for target %v", arrival, got, want)
		}
	}
}

// TestBurstyScheduleIsActuallyBursty: the peak window of each cycle must
// hold disproportionately many arrivals.
func TestBurstyScheduleIsActuallyBursty(t *testing.T) {
	cfg := loadgenConfig{
		Duration:    10 * time.Second,
		QPS:         1000,
		Clients:     1,
		Arrival:     "bursty",
		BurstFactor: 4,
		BurstPeriod: time.Second,
		BurstDuty:   0.25,
		Mix:         "solve=1",
		Seed:        9,
	}
	ops, err := generateSchedule(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	period := cfg.BurstPeriod.Microseconds()
	window := int64(cfg.BurstDuty * float64(period))
	var in int
	for _, op := range ops {
		if op.AtUS%period < window {
			in++
		}
	}
	// Peak window holds duty·factor = all arrivals at factor 4, duty 0.25;
	// uniform traffic would put only 25% there. Demand well above uniform.
	if frac := float64(in) / float64(len(ops)); frac < 0.6 {
		t.Errorf("burst window holds %.0f%% of arrivals; want >60%%", 100*frac)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("solve=0.7,resist=0.2,write=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if got := drawClass(mix, 0.0); got != opClassSolve {
		t.Errorf("r=0 drew %s", got)
	}
	if got := drawClass(mix, 0.95); got != opClassWrite {
		t.Errorf("r=0.95 drew %s", got)
	}
	for _, bad := range []string{"", "solve", "nosuch=1", "solve=-1", "solve=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}
