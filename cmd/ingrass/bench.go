package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ingrass/internal/batch"
	"ingrass/internal/core"
	"ingrass/internal/gen"
	"ingrass/internal/graph"
	"ingrass/internal/grass"
	"ingrass/internal/kernel"
	"ingrass/internal/krylov"
	"ingrass/internal/lrd"
	"ingrass/internal/service"
	"ingrass/internal/solver"
	"ingrass/internal/sparse"
	"ingrass/internal/vecmath"
)

// The bench subcommand runs the repository's hot-path microbenchmarks at a
// fixed scale and appends a labeled run to a machine-readable trajectory
// file (BENCH_solve.json). Every performance PR re-runs it and commits the
// result, so regressions show up as a new run that is slower than the last
// one — reviewable in the diff, not just in CI logs.

// benchResult is one benchmark measurement.
type benchResult struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
	// SpeedupVsSerial is set on parallel entries that have a serial twin.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// Format and PaddingRatio are set on entries that freeze a
	// sparse.LapOperator: the layout the freeze chose (resolving -format
	// auto) and its SELL padding ratio.
	Format       string  `json:"format,omitempty"`
	PaddingRatio float64 `json:"padding_ratio,omitempty"`
}

// benchRun is one labeled invocation of the suite.
type benchRun struct {
	Label      string `json:"label"`
	Recorded   string `json:"recorded"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Format is the requested -format flag value; SIMD reports whether the
	// SIMD vecmath bodies were active for the run.
	Format  string        `json:"format,omitempty"`
	SIMD    bool          `json:"simd"`
	Note    string        `json:"note,omitempty"`
	Results []benchResult `json:"results"`
}

// benchFile is the committed trajectory: runs appended in chronological
// order.
type benchFile struct {
	Schema int        `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_solve.json", "trajectory file to append this run to")
	label := fs.String("label", "dev", "label for this run")
	note := fs.String("note", "", "free-form note stored with the run")
	stdout := fs.Bool("stdout", false, "print the run as JSON instead of appending to -out")
	formatFlag := fs.String("format", "auto", "frozen operator storage layout: auto, csr, or sell")
	simd := fs.Bool("simd", vecmath.SIMDActive(), "use the SIMD vecmath bodies (where supported)")
	fs.Parse(args)

	format, err := solver.ParseFormat(*formatFlag)
	if err != nil {
		fatal(err)
	}
	vecmath.SetSIMD(*simd)

	run := benchRun{
		Label:      *label,
		Recorded:   time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Format:     format.String(),
		SIMD:       vecmath.SIMDActive(),
		Note:       *note,
	}

	addPair := func(name string, serialNs float64, r benchResult) benchResult {
		if serialNs > 0 && r.NsOp > 0 {
			r.SpeedupVsSerial = serialNs / r.NsOp
		}
		return r
	}

	measure := func(name string, fn func(b *testing.B)) benchResult {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", name)
		res := testing.Benchmark(fn)
		return benchResult{
			Name:     name,
			NsOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesOp:  res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
		}
	}

	// --- SpMV: serial vs legacy spawn-per-call vs persistent pool --------
	for _, n := range []int{10000, 100000} {
		grid := benchGrid(n)
		csr := graph.NewCSR(grid)
		x := make([]float64, csr.N)
		dst := make([]float64, csr.N)
		for i := range x {
			x[i] = math.Sin(float64(i))
		}
		prefix := fmt.Sprintf("spmv/grid/n=%d", csr.N)
		serial := measure(prefix+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csr.LapMul(dst, x)
			}
		})
		run.Results = append(run.Results, serial)
		procs := runtime.GOMAXPROCS(0)
		run.Results = append(run.Results, addPair(prefix, serial.NsOp,
			measure(fmt.Sprintf("%s/spawn/workers=%d", prefix, procs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					csr.LapMulParallel(dst, x, procs)
				}
			})))
		pool := kernel.Shared(procs)
		part := csr.NNZPartition(pool.Workers())
		run.Results = append(run.Results, addPair(prefix, serial.NsOp,
			measure(fmt.Sprintf("%s/pool/workers=%d", prefix, pool.Workers()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					pool.LapMul(csr, part, dst, x)
				}
			})))
		// Frozen-operator product under the requested -format, through the
		// same Apply path the service serves (arena-backed SELL when chosen).
		op := sparse.NewLapOperator(grid)
		op.SetWorkers(procs)
		op.SetFormat(format)
		opRes := addPair(prefix, serial.NsOp,
			measure(fmt.Sprintf("%s/op/%s/workers=%d", prefix, op.Format(), op.WorkerCount()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					op.Apply(dst, x)
				}
			}))
		opRes.Format = op.Format().String()
		opRes.PaddingRatio = op.PaddingRatio()
		run.Results = append(run.Results, opRes)
	}

	// social_ba's power-law degrees are the nnz-skew stress for the
	// balanced partition.
	if tc, err := gen.Lookup("social_ba"); err == nil {
		if g, err := tc.Build(0.1, 1); err == nil {
			csr := graph.NewCSR(g)
			x := make([]float64, csr.N)
			dst := make([]float64, csr.N)
			for i := range x {
				x[i] = math.Sin(float64(i))
			}
			prefix := fmt.Sprintf("spmv/social_ba/n=%d", csr.N)
			serial := measure(prefix+"/serial", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					csr.LapMul(dst, x)
				}
			})
			run.Results = append(run.Results, serial)
			pool := kernel.Shared(runtime.GOMAXPROCS(0))
			part := csr.NNZPartition(pool.Workers())
			run.Results = append(run.Results, addPair(prefix, serial.NsOp,
				measure(fmt.Sprintf("%s/pool/workers=%d", prefix, pool.Workers()), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						pool.LapMul(csr, part, dst, x)
					}
				})))
		}
	}

	// --- Warm preconditioned solve (the service read path) ---------------
	// Same shape as internal/service's BenchmarkSolveWarm and the CI
	// allocation gates: a 16x16 grid engine, warm factorization, SolveInto.
	warmWorkers := []int{1}
	if runtime.GOMAXPROCS(0) > 1 {
		warmWorkers = append(warmWorkers, runtime.GOMAXPROCS(0))
	}
	var warmSerialNs float64
	for _, workers := range warmWorkers {
		name := "solve_warm/grid16x16/serial"
		if workers > 1 {
			name = fmt.Sprintf("solve_warm/grid16x16/parallel/workers=%d", workers)
		}
		eng, n := benchEngine(workers, format)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = math.Sin(float64(i))
		}
		vecmath.CenterMean(rhs)
		x := make([]float64, n)
		snap := eng.Current()
		opts := solver.Options{Tol: 1e-8}
		for i := 0; i < 3; i++ {
			if _, err := snap.SolveInto(nil, x, rhs, opts); err != nil {
				fatal(fmt.Errorf("bench: warm solve: %w", err))
			}
		}
		res := addPair(name, warmSerialNs, measure(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := snap.SolveInto(nil, x, rhs, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
		if workers == 1 {
			warmSerialNs = res.NsOp
		}
		sv := eng.Stats()
		res.Format = sv.OperatorFormat
		res.PaddingRatio = sv.OperatorPaddingRatio
		run.Results = append(run.Results, res)
		eng.Close()
	}

	// --- Batched query engine: concurrent clients, single vs coalesced -----
	// Aggregate solve throughput with c clients issuing solves against one
	// warm generation: the single path runs independent SolveInto calls, the
	// coalesced path rides the scheduler and shares blocked multi-RHS
	// executions. ns_op is wall-time per completed solve (inverse aggregate
	// throughput); speedup_vs_serial on coalesced entries is the coalescing
	// win at that concurrency. A larger grid than the warm-solve gate so the
	// shared CSR traversal has real structure to amortize.
	{
		eng, n := benchBatchEngine(format)
		snap := eng.Current()
		// Per-client distinct RHS; warm every pool first.
		mkRHS := func(c int) []float64 {
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = math.Sin(float64(i*(c+2) + c))
			}
			vecmath.CenterMean(rhs)
			return rhs
		}
		opts := solver.Options{Tol: 1e-8}
		warm := make([]float64, n)
		for i := 0; i < 3; i++ {
			if _, err := snap.SolveInto(nil, warm, mkRHS(i), opts); err != nil {
				fatal(fmt.Errorf("bench: batch warmup: %w", err))
			}
		}
		ctx := context.Background()
		for _, clients := range []int{1, 4, 8, 16} {
			run1 := func(b *testing.B, coalesced bool) {
				var remaining atomic.Int64
				remaining.Store(int64(b.N))
				var wg sync.WaitGroup
				b.ResetTimer()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rhs := mkRHS(c)
						x := make([]float64, n)
						for remaining.Add(-1) >= 0 {
							var err error
							if coalesced {
								_, err = eng.SolveCoalesced(ctx, snap, x, rhs, opts)
							} else {
								_, err = snap.SolveInto(ctx, x, rhs, opts)
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}(c)
				}
				wg.Wait()
			}
			prefix := fmt.Sprintf("batch/solve_throughput/torus64x64d12/clients=%d", clients)
			single := measure(prefix+"/single", func(b *testing.B) { run1(b, false) })
			run.Results = append(run.Results, single)
			run.Results = append(run.Results, addPair(prefix, single.NsOp,
				measure(prefix+"/coalesced", func(b *testing.B) { run1(b, true) })))
		}

		// k-pair resistance sweep: one op is the whole k-pair sweep — k
		// independent queries vs ceil(k/8) blocked solves of 8 basis columns.
		const k = 32
		pairs := make([][2]int, k)
		for i := range pairs {
			pairs[i] = [2]int{(i * 37) % n, (i*53 + n/2) % n}
		}
		prefix := fmt.Sprintf("batch/resistance_sweep/torus64x64d12/k=%d", k)
		singleSweep := measure(prefix+"/single", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					if _, err := snap.EffectiveResistance(ctx, p[0], p[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		run.Results = append(run.Results, singleSweep)
		const sweepBlock = 8
		bs := make([][]float64, sweepBlock)
		xs := make([][]float64, sweepBlock)
		for i := range bs {
			bs[i] = make([]float64, n)
			xs[i] = make([]float64, n)
		}
		out := make([]sparse.ColumnResult, sweepBlock)
		run.Results = append(run.Results, addPair(prefix, singleSweep.NsOp,
			measure(prefix+"/batch", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < k; lo += sweepBlock {
						hi := lo + sweepBlock
						if hi > k {
							hi = k
						}
						w := hi - lo
						for c := 0; c < w; c++ {
							vecmath.Zero(bs[c])
							vecmath.Basis(bs[c], pairs[lo+c][0], pairs[lo+c][1])
						}
						if _, err := snap.SolveBlockInto(ctx, xs[:w], bs[:w], out[:w], nil, solver.Options{}); err != nil {
							b.Fatal(err)
						}
						for c := 0; c < w; c++ {
							if out[c].Err != nil {
								b.Fatal(out[c].Err)
							}
						}
					}
				}
			})))
		eng.Close()
	}

	// --- Jacobi-PCG Laplacian solve (fe_4elt2, matches BenchmarkLapSolve)
	if tc, err := gen.Lookup("fe_4elt2"); err == nil {
		if g, err := tc.Build(0.1, 1); err == nil {
			s := sparse.NewLaplacianSolver(g, solver.Options{Tol: 1e-6})
			rhs := make([]float64, g.NumNodes())
			vecmath.NewRNG(1).FillNormal(rhs)
			vecmath.CenterMean(rhs)
			dst := make([]float64, g.NumNodes())
			run.Results = append(run.Results, measure("lapsolve/fe_4elt2/tol=1e-6", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(nil, dst, rhs); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	// --- Per-edge incremental update (the paper's O(log N) claim) --------
	if g, err := gen.Delaunay(8000, 1); err == nil {
		if init, err := grass.Sparsify(g, grass.Config{
			TargetDensity: 0.10, Tree: grass.TreeLowStretch, SimilarityFilter: true, Seed: 1,
		}); err == nil {
			sp, err := core.NewSparsifier(g.Clone(), init.H.Clone(), core.Config{
				TargetCond: 100,
				LRD:        lrd.Config{Krylov: krylov.Config{Seed: 1}},
			})
			if err == nil {
				stream, serr := gen.Stream(g, gen.StreamConfig{Kind: gen.StreamLocal, Count: 4096, Batches: 1, Seed: 3})
				if serr == nil {
					flat := stream[0]
					run.Results = append(run.Results, measure("update/delaunay/n=8000/per-edge", func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							e := flat[i%len(flat)]
							if _, err := sp.UpdateBatch([]graph.Edge{e}); err != nil {
								b.Fatal(err)
							}
						}
					}))
				}
			}
		}
	}

	if *stdout {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(run); err != nil {
			fatal(fmt.Errorf("bench: %w", err))
		}
		return
	}

	var file benchFile
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal(fmt.Errorf("bench: %s exists but is not a trajectory file: %w", *out, err))
		}
	}
	file.Schema = 1
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	fmt.Printf("bench: appended run %q (%d results) to %s\n", run.Label, len(run.Results), *out)
}

// benchGrid builds a ~n-node 2D grid (the SpMV benchmark substrate:
// bounded degree, bandwidth-bound).
func benchGrid(n int) *graph.Graph {
	side := int(math.Sqrt(float64(n)))
	g := graph.New(side*side, 0)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := r*side + c
			if c+1 < side {
				g.AddEdge(u, u+1, 1)
			}
			if r+1 < side {
				g.AddEdge(u, u+side, 1)
			}
		}
	}
	return g
}

// benchTorus builds a side x side torus with 1-step, diagonal, and 2-step
// links (degree 12) — a mesh-like graph where the Laplacian product carries
// a realistic share of the solve, unlike the minimal degree-4 grid.
func benchTorus(side int) *graph.Graph {
	n := side * side
	g := graph.New(n, 6*n)
	id := func(i, j int) int { return ((i+side)%side)*side + (j+side)%side }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			u := id(i, j)
			g.AddEdge(u, id(i, j+1), 1)
			g.AddEdge(u, id(i+1, j), 1)
			g.AddEdge(u, id(i+1, j+1), 1)
			g.AddEdge(u, id(i+1, j-1), 0.5)
			g.AddEdge(u, id(i, j+2), 0.5)
			g.AddEdge(u, id(i+2, j), 0.5)
		}
	}
	return g
}

// benchBatchEngine builds the engine the batched-workload benchmarks run
// against: a 64x64 degree-12 torus (4096 nodes, ~25k edges) with an
// off-tree sparsifier density of 0.3. The blocked-vs-independent ratio is
// governed by how much of a solve streams CSR structure (which coalescing
// amortizes) versus per-column vector passes (which it cannot); this
// mesh-plus-moderate-sparsifier workload is the serving shape the engine
// targets. The block width is 8, matching the 8-client acceptance point.
func benchBatchEngine(format solver.Format) (*service.Engine, int) {
	g := benchTorus(64)
	init, err := grass.InitialSparsifier(g, 0.3, 1)
	if err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	eng := service.New(sp, service.Options{
		Solver: solver.Options{Workers: runtime.GOMAXPROCS(0), Format: format},
		// 1ms window: wide enough that a wave of resubmitting clients
		// refills the next group before it seals (the scheduler's
		// busy-executor re-arm handles the sustained-load case; the window
		// covers the wave-start race on an otherwise idle engine).
		Batch: batch.Options{Window: time.Millisecond, MaxBlock: 8},
	})
	return eng, g.NumNodes()
}

// benchEngine builds the 16x16-grid service engine the warm-solve gate
// uses, with the given frozen solver parallelism.
func benchEngine(workers int, format solver.Format) (*service.Engine, int) {
	g := benchGrid(256)
	init, err := grass.InitialSparsifier(g, 0.1, 1)
	if err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	sp, err := core.NewSparsifier(g, init.H, core.Config{
		TargetCond: 50,
		LRD:        lrd.Config{Krylov: krylov.Config{Seed: 2}},
	})
	if err != nil {
		fatal(fmt.Errorf("bench: %w", err))
	}
	return service.New(sp, service.Options{Solver: solver.Options{Workers: workers, Format: format}}), g.NumNodes()
}
