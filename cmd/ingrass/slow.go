package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"ingrass/internal/obs/trace"
)

// cmdSlow fetches a server's (or router's) flight recorder at
// GET /debug/requests and renders each retained trace as a per-span
// waterfall: one row per span, indented by parentage, with a bar showing
// where the span sits on the request's timeline. Stitched cross-process
// traces (router + backend) render on one shared timeline, each span
// tagged with the process it ran in.
//
//	ingrass slow http://127.0.0.1:8090
//	ingrass slow -endpoint solve -n 3 http://127.0.0.1:8080
func cmdSlow(args []string) {
	fs := flag.NewFlagSet("slow", flag.ExitOnError)
	endpoint := fs.String("endpoint", "", "filter to one endpoint")
	traceID := fs.String("trace", "", "filter to one trace ID (32 hex)")
	limit := fs.Int("n", 10, "render at most this many traces")
	width := fs.Int("width", 48, "waterfall bar width in characters")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ingrass slow [-endpoint ep] [-trace id] [-n max] <base-url>")
		os.Exit(2)
	}
	base := strings.TrimRight(fs.Arg(0), "/")

	q := url.Values{}
	if *endpoint != "" {
		q.Set("endpoint", *endpoint)
	}
	if *traceID != "" {
		q.Set("trace", *traceID)
	}
	u := base + "/debug/requests"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body))))
	}
	var dr trace.DebugRequests
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		fatal(fmt.Errorf("decoding %s: %w", u, err))
	}
	if len(dr.Traces) == 0 {
		fmt.Println("no retained traces")
		return
	}
	for i, t := range dr.Traces {
		if i >= *limit {
			fmt.Printf("... %d more trace(s); raise -n to render them\n", len(dr.Traces)-i)
			break
		}
		if i > 0 {
			fmt.Println()
		}
		renderTrace(os.Stdout, t, *width)
	}
}

// spanRow is one waterfall line: a span plus the process it ran in and its
// indentation depth from parent links.
type spanRow struct {
	span  trace.SpanSnapshot
	proc  string
	depth int
}

// collectRows flattens a trace and its stitched remote continuations into
// one row list. proc labels the local process ("" for the queried one).
func collectRows(t *trace.TraceSnapshot, proc string, rows []spanRow) []spanRow {
	for _, s := range t.Spans {
		rows = append(rows, spanRow{span: s, proc: proc})
	}
	for _, rem := range t.Remote {
		for _, rt := range rem.Traces {
			rows = collectRows(rt, rem.Backend, rows)
		}
	}
	return rows
}

// renderTrace prints one trace's waterfall to w.
func renderTrace(w io.Writer, t *trace.TraceSnapshot, width int) {
	rows := collectRows(t, "", nil)
	if len(rows) == 0 {
		return
	}

	// Depth from parent links; the links cross process boundaries because
	// a backend root's parent is the router's client span, which is also
	// in the row set of a stitched trace.
	parent := make(map[string]string, len(rows))
	for _, r := range rows {
		parent[r.span.ID] = r.span.Parent
	}
	depth := func(id string) int {
		d := 0
		for p := parent[id]; p != ""; p = parent[p] {
			if _, ok := parent[p]; !ok {
				break
			}
			d++
			if d > len(rows) { // defensive: broken links must not loop
				break
			}
		}
		return d
	}
	for i := range rows {
		rows[i].depth = depth(rows[i].span.ID)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].span.StartUnixNano < rows[j].span.StartUnixNano
	})

	t0 := rows[0].span.StartUnixNano
	t1 := t0
	for _, r := range rows {
		if end := r.span.StartUnixNano + r.span.DurationNanos; end > t1 {
			t1 = end
		}
	}
	total := t1 - t0
	if total <= 0 {
		total = 1
	}

	fmt.Fprintf(w, "trace %s  endpoint=%s  status=%d  reason=%s  duration=%s\n",
		t.TraceID, t.Endpoint, t.Status, t.Reason, fmtDur(t.DurationNanos))
	if t.DroppedSpans > 0 {
		fmt.Fprintf(w, "  (%d span(s) dropped: buffer overflow)\n", t.DroppedSpans)
	}
	for _, r := range rows {
		s := r.span
		lo := int(float64(s.StartUnixNano-t0) / float64(total) * float64(width))
		hi := int(float64(s.StartUnixNano+s.DurationNanos-t0) / float64(total) * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) + strings.Repeat(" ", width-hi)
		name := strings.Repeat("  ", r.depth) + s.Name
		durCol := fmtDur(s.DurationNanos)
		if s.Unfinished {
			durCol = "unfinished"
		}
		line := fmt.Sprintf("  [%s]  %-28s %10s", bar, name, durCol)
		if r.proc != "" {
			line += "  @" + r.proc
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, s.Attrs[k])
			}
			line += "  " + strings.Join(parts, " ")
		}
		fmt.Fprintln(w, line)
	}
}

// fmtDur renders nanoseconds with sub-millisecond precision kept readable.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(100 * time.Nanosecond).String()
}
