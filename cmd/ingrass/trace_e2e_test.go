package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/obs/trace"
	"ingrass/internal/repl"
)

// tracedBackend is one serve-mux instance with an always-sample recorder,
// standing in for a primary or follower process.
type tracedBackend struct {
	tracer *trace.Recorder
	srv    *httptest.Server
}

func newTracedBackend(t *testing.T) *tracedBackend {
	t.Helper()
	// Coalescing matches the serve command's default, so single solves ride
	// the scheduler and record batch_group spans like production.
	svc := testBatchService(t)
	tracer := trace.NewRecorder(trace.Options{SampleRate: 1})
	tracer.RegisterMetrics(svc.Metrics())
	srv := httptest.NewServer(newServeMux(svc, tracer))
	t.Cleanup(srv.Close)
	return &tracedBackend{tracer: tracer, srv: srv}
}

// spanNames collects the set of span names in a snapshot.
func spanNames(ts *trace.TraceSnapshot) map[string]int {
	out := make(map[string]int)
	for _, s := range ts.Spans {
		out[s.Name]++
	}
	return out
}

func findSpan(ts *trace.TraceSnapshot, name string) *trace.SpanSnapshot {
	for i := range ts.Spans {
		if ts.Spans[i].Name == name {
			return &ts.Spans[i]
		}
	}
	return nil
}

// TestTracePropagationThroughRouter is the cross-process acceptance check:
// one POST /solve through the router to a replica produces ONE trace whose
// router-side portion (http_request root + router_client child) and
// backend-side portion (http_request -> batch_group -> solve_outer ->
// solve_inner) share the trace ID and link parent-to-child across the
// process boundary, retrievable stitched from the router's /debug/requests.
// A POST /edges exercises the same round-trip toward the primary.
func TestTracePropagationThroughRouter(t *testing.T) {
	primary := newTracedBackend(t)
	follower := newTracedBackend(t)

	reg := obs.NewRegistry()
	routerTracer := trace.NewRecorder(trace.Options{SampleRate: 1})
	routerTracer.RegisterMetrics(reg)
	rt := repl.NewRouter(repl.RouterOptions{
		Primary:     primary.srv.URL,
		Replicas:    []string{follower.srv.URL},
		HealthEvery: 25 * time.Millisecond,
		Obs:         reg,
		Tracer:      routerTracer,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// A read routes to the replica; a write routes to the primary.
	rhs := make([]float64, 36)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	body, _ := json.Marshal(map[string]any{"b": rhs})
	resp, err := http.Post(front.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve via router: %d", resp.StatusCode)
	}
	wbody, _ := json.Marshal(map[string]any{"edges": []map[string]any{{"u": 0, "v": 35, "w": 2.0}}})
	resp, err = http.Post(front.URL+"/edges", "application/json", bytes.NewReader(wbody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /edges via router: %d", resp.StatusCode)
	}

	// The router's stitched flight recorder is the single retrieval point.
	var dr trace.DebugRequests
	dresp, err := http.Get(front.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if err := json.NewDecoder(dresp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}

	checkStitched := func(endpoint, backendURL string, wantBackendSpans []string) *trace.TraceSnapshot {
		t.Helper()
		var ts *trace.TraceSnapshot
		for _, cand := range dr.Traces {
			if cand.Endpoint == endpoint {
				ts = cand
				break
			}
		}
		if ts == nil {
			t.Fatalf("router retained no %q trace: %d traces total", endpoint, len(dr.Traces))
		}
		root := findSpan(ts, "http_request")
		client := findSpan(ts, "router_client")
		if root == nil || client == nil {
			t.Fatalf("%s: router spans %v, want http_request + router_client", endpoint, spanNames(ts))
		}
		if client.Parent != root.ID {
			t.Fatalf("%s: router_client parent %s, want root %s", endpoint, client.Parent, root.ID)
		}

		var rem *trace.RemoteTrace
		for i := range ts.Remote {
			if ts.Remote[i].Backend == backendURL {
				rem = &ts.Remote[i]
			}
		}
		if rem == nil || len(rem.Traces) == 0 {
			t.Fatalf("%s: no stitched continuation from %s (remotes: %d)", endpoint, backendURL, len(ts.Remote))
		}
		bt := rem.Traces[0]
		if bt.TraceID != ts.TraceID {
			t.Fatalf("%s: backend trace ID %s != router trace ID %s", endpoint, bt.TraceID, ts.TraceID)
		}
		broot := findSpan(bt, "http_request")
		if broot == nil {
			t.Fatalf("%s: backend trace has no http_request root: %v", endpoint, spanNames(bt))
		}
		// The cross-process link: the backend's root parents under the
		// router's client span.
		if broot.Parent != client.ID {
			t.Fatalf("%s: backend root parent %s, want router_client %s", endpoint, broot.Parent, client.ID)
		}
		if broot.ID == root.ID || broot.ID == client.ID {
			t.Fatalf("%s: backend span ID %s collides with a router span", endpoint, broot.ID)
		}
		names := spanNames(bt)
		for _, want := range wantBackendSpans {
			if names[want] == 0 {
				t.Fatalf("%s: backend trace missing %q span (has %v)", endpoint, want, names)
			}
		}
		return ts
	}

	solveTrace := checkStitched("solve", follower.srv.URL,
		[]string{"http_request", "batch_group", "solve_outer", "solve_inner"})
	// The write round-trip: batch_group/wal spans need a durable engine
	// (covered by the CI trace smoke); here the linkage itself is the check.
	checkStitched("edges_add", primary.srv.URL, []string{"http_request"})

	// The waterfall renderer draws the stitched trace: all three layers on
	// one timeline, backend rows tagged with their process.
	var buf bytes.Buffer
	renderTrace(&buf, solveTrace, 48)
	out := buf.String()
	for _, want := range []string{"trace " + solveTrace.TraceID, "router_client", "solve_outer", "@" + follower.srv.URL} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}

// TestTraceHeaderRoundTripDirect drives a backend directly with a synthetic
// traceparent and checks the inject/extract round trip without the router:
// the backend adopts the trace ID, parents under the given span, retains it
// (flag bit set), and serves it back by ID from /debug/requests.
func TestTraceHeaderRoundTripDirect(t *testing.T) {
	b := newTracedBackend(t)
	const parentHdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

	rhs := make([]float64, 36)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i))
	}
	body, _ := json.Marshal(map[string]any{"b": rhs})
	req, _ := http.NewRequest(http.MethodPost, b.srv.URL+"/solve", bytes.NewReader(body))
	req.Header.Set(trace.TraceparentHeader, parentHdr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve: %d", resp.StatusCode)
	}

	dresp, err := http.Get(b.srv.URL + "/debug/requests?trace=4bf92f3577b34da6a3ce929d0e0e4736")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dr trace.DebugRequests
	if err := json.NewDecoder(dresp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Traces) != 1 {
		t.Fatalf("debug/requests?trace= returned %d traces, want 1", len(dr.Traces))
	}
	ts := dr.Traces[0]
	if ts.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID %s", ts.TraceID)
	}
	root := findSpan(ts, "http_request")
	if root == nil || root.Parent != "00f067aa0ba902b7" {
		t.Fatalf("root span %+v, want parent 00f067aa0ba902b7", root)
	}
}
