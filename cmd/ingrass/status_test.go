package main

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"ingrass"
)

func TestSolveStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"no convergence", fmt.Errorf("outer: %w", ingrass.ErrNoConvergence), http.StatusUnprocessableEntity},
		{"deadline", fmt.Errorf("%w: %w", ingrass.ErrCancelled, context.DeadlineExceeded), http.StatusRequestTimeout},
		{"client cancel", fmt.Errorf("%w: %w", ingrass.ErrCancelled, context.Canceled), statusClientClosedRequest},
		{"other solver failure", fmt.Errorf("breakdown"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if got := solveStatus(c.err); got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, got, c.want)
		}
	}
}

// TestHTTPSolveOptionsReachSolver drives the unified options end to end: a
// one-iteration budget with an unreachable tolerance must come back as 422
// with the non-convergence error, proving tol/max_iter flow from the
// request body to the innermost CG loop.
func TestHTTPSolveOptionsReachSolver(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	b := make([]float64, 36)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	var e errorResponse
	r := doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: b, Tol: 1e-15, MaxIter: 1}, &e)
	if r.StatusCode != http.StatusUnprocessableEntity || e.Error == "" {
		t.Fatalf("starved solve: %d %+v", r.StatusCode, e)
	}
}
