package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/obs/trace"
	"ingrass/internal/repl"
)

// cmdRoute runs the thin replication router: writes forward to the primary,
// reads fan out across healthy ready followers (round-robin, one retry on a
// different backend), and the primary serves reads only when no replica
// qualifies. Health is polled actively via each backend's /healthz (which
// reports role and readiness) and maintained passively by ejecting backends
// that fail a request.
//
//	ingrass route -addr :8090 -primary http://127.0.0.1:8080 \
//	       -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
func cmdRoute(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	primary := fs.String("primary", "", "primary base URL — the write target (required)")
	replicas := fs.String("replicas", "", "comma-separated follower base URLs reads fan across")
	healthEvery := fs.Duration("health-every", 500*time.Millisecond, "active health-check interval")
	ejectFor := fs.Duration("eject-for", 2*time.Second, "how long a failing backend stays out of rotation")
	traceSample := fs.Float64("trace-sample", 0.01, "head-sampling probability for routed request traces (propagated to backends)")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "retain any routed request trace at least this slow")
	_ = fs.Parse(args)
	if *primary == "" {
		fs.Usage()
		os.Exit(2)
	}
	var reps []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			reps = append(reps, strings.TrimRight(u, "/"))
		}
	}

	// The router has its own registry (it is its own process) and its own
	// trace recorder: each routed request gets a root span plus a
	// router_client span per forward attempt, and the trace ID travels to
	// the chosen backend so /debug/requests can stitch both sides.
	reg := obs.NewRegistry()
	tracer := trace.NewRecorder(trace.Options{
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
	})
	tracer.RegisterMetrics(reg)
	registerRuntimeMetrics(reg, time.Now())

	rt := repl.NewRouter(repl.RouterOptions{
		Primary:     strings.TrimRight(*primary, "/"),
		Replicas:    reps,
		HealthEvery: *healthEvery,
		EjectFor:    *ejectFor,
		Obs:         reg,
		Tracer:      tracer,
	})
	rt.Start()
	defer rt.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	server := &http.Server{Addr: *addr, Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("routing on %s: writes -> %s, reads across %d replica(s)\n",
		*addr, *primary, len(reps))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = server.Shutdown(shutCtx)
	}
}
