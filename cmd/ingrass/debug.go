package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	rdebug "runtime/debug"
	"runtime/metrics"
	"sync"
	"time"

	"ingrass/internal/obs"
)

// Process-level debug surface: runtime/metrics-backed gauges registered in
// the service's obs registry (always on — they ride the normal /metrics
// scrape and metricslint covers them), and a separate pprof listener gated
// behind `serve -debug-addr` so profiling endpoints are never exposed on
// the service port by accident.

// runtimeSampler batches the runtime/metrics reads behind the registry's
// GaugeFunc samples so one scrape triggers one metrics.Read, not five.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    time.Time
}

const runtimeSampleMaxAge = 250 * time.Millisecond

// Indices into runtimeSampler.samples.
const (
	rsGoroutines = iota
	rsHeapBytes
	rsTotalBytes
	rsGCCycles
	rsGCPauses
	rsNumSamples
)

func newRuntimeSampler() *runtimeSampler {
	rs := &runtimeSampler{samples: make([]metrics.Sample, rsNumSamples)}
	rs.samples[rsGoroutines].Name = "/sched/goroutines:goroutines"
	rs.samples[rsHeapBytes].Name = "/memory/classes/heap/objects:bytes"
	rs.samples[rsTotalBytes].Name = "/memory/classes/total:bytes"
	rs.samples[rsGCCycles].Name = "/gc/cycles/total:gc-cycles"
	rs.samples[rsGCPauses].Name = "/gc/pauses:seconds"
	return rs
}

// value refreshes the sample set if stale and returns sample i as a float.
func (rs *runtimeSampler) value(i int) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if time.Since(rs.last) > runtimeSampleMaxAge {
		metrics.Read(rs.samples)
		rs.last = time.Now()
	}
	s := rs.samples[i]
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	case metrics.KindFloat64Histogram:
		// The only histogram we sample is /gc/pauses:seconds; report the
		// worst pause observed so far (upper bound of the highest
		// non-empty bucket).
		h := s.Value.Float64Histogram()
		maxPause := 0.0
		for b := len(h.Counts) - 1; b >= 0; b-- {
			if h.Counts[b] > 0 {
				maxPause = h.Buckets[b+1]
				break
			}
		}
		return maxPause
	}
	return 0
}

// registerRuntimeMetrics exposes process health gauges in reg: goroutine
// count, heap and total memory, GC cycles and worst pause, uptime, and a
// constant build-info series carrying the Go version and VCS revision as
// labels (the standard Prometheus build_info idiom).
func registerRuntimeMetrics(reg *obs.Registry, start time.Time) {
	rs := newRuntimeSampler()
	reg.GaugeFunc("ingrass_goroutines",
		"Live goroutines in the serving process",
		func() float64 { return rs.value(rsGoroutines) })
	reg.GaugeFunc("ingrass_heap_objects_bytes",
		"Bytes of live heap objects",
		func() float64 { return rs.value(rsHeapBytes) })
	reg.GaugeFunc("ingrass_memory_total_bytes",
		"Total bytes of memory mapped by the Go runtime",
		func() float64 { return rs.value(rsTotalBytes) })
	reg.CounterFunc("ingrass_gc_cycles_total",
		"Completed GC cycles",
		func() float64 { return rs.value(rsGCCycles) })
	reg.GaugeFunc("ingrass_gc_pause_max_seconds",
		"Worst stop-the-world GC pause observed since process start",
		func() float64 { return rs.value(rsGCPauses) })
	reg.GaugeFunc("ingrass_uptime_seconds",
		"Seconds since the serving process started",
		func() float64 { return time.Since(start).Seconds() })

	goVersion, revision := "unknown", "unknown"
	if bi, ok := rdebug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	reg.GaugeFunc("ingrass_build_info",
		"Build metadata as labels; value is always 1",
		func() float64 { return 1 },
		obs.Label{Key: "go_version", Value: goVersion},
		obs.Label{Key: "revision", Value: revision})
}

// startDebugServer serves net/http/pprof on its own listener. Registering
// on a private mux (not http.DefaultServeMux) keeps the profiling surface
// off the service port entirely.
func startDebugServer(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "ingrass: debug server on %s: %v\n", addr, err)
		}
	}()
	fmt.Printf("debug server (pprof) on %s\n", addr)
}
