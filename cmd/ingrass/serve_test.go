package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ingrass"
)

func testService(t *testing.T) *ingrass.Service {
	t.Helper()
	const rows, cols = 6, 6
	g := ingrass.NewGraph(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				if _, err := g.AddEdge(id(i, j), id(i, j+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if i+1 < rows {
				if _, err := g.AddEdge(id(i, j), id(i+1, j), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	svc, err := ingrass.NewService(g, ingrass.ServiceOptions{
		Options: ingrass.Options{InitialDensity: 0.1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, out any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp
}

func TestHTTPEndpoints(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	// Health.
	resp := doJSON(t, srv, http.MethodGet, "/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Insert a batch.
	var wr ingrass.WriteResult
	resp = doJSON(t, srv, http.MethodPost, "/edges", edgesRequest{
		Edges: []edgeJSON{{U: 0, V: 35, W: 2}, {U: 5, V: 30, W: 1.5}},
	}, &wr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /edges: %d", resp.StatusCode)
	}
	if wr.Generation == 0 || wr.Included+wr.Merged+wr.Redistributed != 2 {
		t.Fatalf("write result %+v", wr)
	}

	// Solve.
	b := make([]float64, 36)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	var sr solveResponse
	resp = doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: b, Tol: 1e-8}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve: %d", resp.StatusCode)
	}
	if !sr.Stats.Converged || len(sr.X) != 36 || sr.Stats.Generation != wr.Generation {
		t.Fatalf("solve response stats %+v", sr.Stats)
	}

	// Resistance.
	var rr map[string]any
	resp = doJSON(t, srv, http.MethodGet, "/resistance?u=0&v=1", nil, &rr)
	if resp.StatusCode != http.StatusOK || !(rr["resistance"].(float64) > 0) {
		t.Fatalf("GET /resistance: %d %+v", resp.StatusCode, rr)
	}

	// Sparsifier as text: parses back as a graph over the same node set.
	httpResp, err := srv.Client().Get(srv.URL + "/sparsifier")
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.Header.Get("X-Ingrass-Generation") == "" {
		t.Fatal("missing generation header")
	}
	h, err := ingrass.ReadGraph(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatalf("sparsifier export did not round-trip: %v", err)
	}
	if h.NumNodes() != 36 || !h.IsConnected() {
		t.Fatalf("exported sparsifier: %d nodes connected=%v", h.NumNodes(), h.IsConnected())
	}

	// Sparsifier as JSON, pinned to the write's generation.
	var sp struct {
		Generation uint64     `json:"generation"`
		Nodes      int        `json:"nodes"`
		Edges      []edgeJSON `json:"edges"`
	}
	resp = doJSON(t, srv, http.MethodGet, fmt.Sprintf("/sparsifier?format=json&gen=%d", wr.Generation), nil, &sp)
	if resp.StatusCode != http.StatusOK || sp.Generation != wr.Generation || sp.Nodes != 36 || len(sp.Edges) == 0 {
		t.Fatalf("GET /sparsifier json: %d %+v", resp.StatusCode, sp)
	}

	// Delete the inserted edge.
	resp = doJSON(t, srv, http.MethodDelete, "/edges", edgesRequest{
		Edges: []edgeJSON{{U: 0, V: 35}},
	}, &wr)
	if resp.StatusCode != http.StatusOK || wr.Deleted != 1 {
		t.Fatalf("DELETE /edges: %d %+v", resp.StatusCode, wr)
	}

	// Stats reflect the traffic.
	var st ingrass.ServiceStats
	resp = doJSON(t, srv, http.MethodGet, "/stats", nil, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	if st.Solves == 0 || st.WriteRequests < 2 || st.ResistanceQueries == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	// Malformed body.
	resp, err := srv.Client().Post(srv.URL+"/edges", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}

	// Invalid edge (self-loop).
	var e errorResponse
	r := doJSON(t, srv, http.MethodPost, "/edges", edgesRequest{Edges: []edgeJSON{{U: 3, V: 3, W: 1}}}, &e)
	if r.StatusCode != http.StatusUnprocessableEntity || e.Error == "" {
		t.Fatalf("self-loop: %d %+v", r.StatusCode, e)
	}

	// Wrong-length RHS.
	r = doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: []float64{1, 2, 3}}, &e)
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short rhs: %d", r.StatusCode)
	}

	// Evicted generation.
	r = doJSON(t, srv, http.MethodGet, "/sparsifier?gen=999", nil, &e)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing gen: %d", r.StatusCode)
	}

	// Unknown endpoint/method.
	resp, err = srv.Client().Get(srv.URL + "/edges")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /edges should not be routable")
	}
}
