package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ingrass"
)

// testBatchService is testService with single-request coalescing enabled,
// as `ingrass serve` runs by default.
func testBatchService(t *testing.T) *ingrass.Service {
	t.Helper()
	const rows, cols = 6, 6
	g := ingrass.NewGraph(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				if _, err := g.AddEdge(id(i, j), id(i, j+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if i+1 < rows {
				if _, err := g.AddEdge(id(i, j), id(i+1, j), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	svc, err := ingrass.NewService(g, ingrass.ServiceOptions{
		Options: ingrass.Options{InitialDensity: 0.1, Seed: 1},
		Batch:   ingrass.BatchOptions{CoalesceSingles: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestResistanceValidation pins the structured 400s of GET /resistance:
// missing, non-integer, out-of-range, and equal endpoints each name the
// offending field and a machine-matchable reason.
func TestResistanceValidation(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	cases := []struct {
		name   string
		query  string
		field  string
		reason string
	}{
		{"missing u", "/resistance?v=3", "u", reasonMissing},
		{"missing v", "/resistance?u=3", "v", reasonMissing},
		{"missing both", "/resistance", "u", reasonMissing},
		{"non-integer u", "/resistance?u=abc&v=3", "u", reasonNotAnInteger},
		{"float v", "/resistance?u=3&v=1.5", "v", reasonNotAnInteger},
		{"negative u", "/resistance?u=-1&v=3", "u", reasonOutOfRange},
		{"v beyond n", "/resistance?u=3&v=36", "v", reasonOutOfRange},
		{"u == v", "/resistance?u=7&v=7", "v", reasonEqualEndpoints},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fe fieldError
			resp := doJSON(t, srv, http.MethodGet, tc.query, nil, &fe)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if fe.Field != tc.field || fe.Reason != tc.reason || fe.Error == "" {
				t.Fatalf("field error %+v, want field=%q reason=%q", fe, tc.field, tc.reason)
			}
		})
	}

	// A valid query still works after all those rejections.
	var okBody struct {
		Resistance float64 `json:"resistance"`
	}
	if resp := doJSON(t, srv, http.MethodGet, "/resistance?u=0&v=35", nil, &okBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid query: %d", resp.StatusCode)
	}
	if okBody.Resistance <= 0 {
		t.Fatalf("resistance %g, want > 0", okBody.Resistance)
	}
}

// TestSolveBatchEndpoint: POST /solve/batch answers every right-hand side
// identically to individual POST /solve calls, under one generation.
func TestSolveBatchEndpoint(t *testing.T) {
	svc := testBatchService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	const n, k = 36, 5
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = math.Sin(float64(i*(j+1) + j))
		}
	}
	var br batchSolveResponse
	resp := doJSON(t, srv, http.MethodPost, "/solve/batch", batchSolveRequest{Bs: bs, Tol: 1e-8}, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve/batch: %d", resp.StatusCode)
	}
	if len(br.Results) != k {
		t.Fatalf("%d results, want %d", len(br.Results), k)
	}
	for j, item := range br.Results {
		if item.Error != "" || !item.Stats.Converged || len(item.X) != n {
			t.Fatalf("result %d: %+v", j, item.Stats)
		}
		if item.Stats.Generation != br.Generation {
			t.Fatalf("result %d generation %d != batch generation %d", j, item.Stats.Generation, br.Generation)
		}
		var sr solveResponse
		if resp := doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: bs[j], Tol: 1e-8}, &sr); resp.StatusCode != http.StatusOK {
			t.Fatalf("single solve %d: %d", j, resp.StatusCode)
		}
		for i := range sr.X {
			if math.Abs(sr.X[i]-item.X[i]) > 1e-12 {
				t.Fatalf("result %d deviates from single solve at %d", j, i)
			}
		}
	}

	// Empty batch is a structured 400.
	var fe fieldError
	if resp := doJSON(t, srv, http.MethodPost, "/solve/batch", batchSolveRequest{}, &fe); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
	if fe.Field != "bs" || fe.Reason != reasonMissing {
		t.Fatalf("empty batch error %+v", fe)
	}
}

// TestResistanceBatchEndpoint: POST /resistance/batch mixes valid,
// degenerate, and invalid pairs with per-item outcomes.
func TestResistanceBatchEndpoint(t *testing.T) {
	svc := testBatchService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	req := batchResistanceRequest{Pairs: []edgeJSON{
		{U: 0, V: 35}, {U: 1, V: 2}, {U: 4, V: 4}, {U: 0, V: 99}, {U: 35, V: 0},
	}}
	var br batchResistanceResponse
	resp := doJSON(t, srv, http.MethodPost, "/resistance/batch", req, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /resistance/batch: %d", resp.StatusCode)
	}
	if len(br.Results) != 5 {
		t.Fatalf("%d results, want 5", len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[0].Resistance <= 0 {
		t.Fatalf("pair 0: %+v", br.Results[0])
	}
	if br.Results[2].Error != "" || br.Results[2].Resistance != 0 {
		t.Fatalf("u==v pair: %+v", br.Results[2])
	}
	if br.Results[3].Error == "" {
		t.Fatalf("out-of-range pair succeeded: %+v", br.Results[3])
	}
	if math.Abs(br.Results[0].Resistance-br.Results[4].Resistance) > 1e-9 {
		t.Fatalf("resistance not symmetric: %g vs %g", br.Results[0].Resistance, br.Results[4].Resistance)
	}

	// Cross-check one pair against the single endpoint.
	var single struct {
		Resistance float64 `json:"resistance"`
	}
	if resp := doJSON(t, srv, http.MethodGet, "/resistance?u=1&v=2", nil, &single); resp.StatusCode != http.StatusOK {
		t.Fatalf("single resistance: %d", resp.StatusCode)
	}
	if math.Abs(single.Resistance-br.Results[1].Resistance) > 1e-9 {
		t.Fatalf("batch %g vs single %g", br.Results[1].Resistance, single.Resistance)
	}
}

// TestCoalescedSolvesAndStats: concurrent single POST /solve requests are
// transparently coalesced, and GET /stats exposes the scheduler counters.
func TestCoalescedSolvesAndStats(t *testing.T) {
	svc := testBatchService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	const n, clients = 36, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			b := make([]float64, n)
			for i := range b {
				b[i] = math.Sin(float64(i + c))
			}
			var sr solveResponse
			resp := doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: b, Tol: 1e-8}, &sr)
			if resp.StatusCode != http.StatusOK || !sr.Stats.Converged {
				t.Errorf("client %d: status %d stats %+v", c, resp.StatusCode, sr.Stats)
			}
		}(c)
	}
	wg.Wait()

	var st ingrass.ServiceStats
	if resp := doJSON(t, srv, http.MethodGet, "/stats", nil, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %d", resp.StatusCode)
	}
	if st.BatchesFormed == 0 {
		t.Fatal("stats report zero batches formed after coalesced solves")
	}
	if st.AvgBlockFill <= 0 {
		t.Fatalf("avg block fill %v", st.AvgBlockFill)
	}
	if st.BatchQueueDepth != 0 {
		t.Fatalf("queue depth %d at idle", st.BatchQueueDepth)
	}
	if st.Solves < clients {
		t.Fatalf("stats count %d solves, want >= %d", st.Solves, clients)
	}
}
