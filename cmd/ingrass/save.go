package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ingrass"
)

// cmdSave initializes a durable data directory from a graph file: it runs
// the full GRASS + inGRASS setup once and writes the generation-0
// checkpoint, so every later `ingrass serve --data-dir` or `ingrass load`
// starts from the persisted state instead of re-running setup.
func cmdSave(args []string) {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	dataDir := fs.String("data-dir", "", "data directory to initialize (required, must hold no prior state)")
	density := fs.Float64("density", 0.1, "initial sparsifier density")
	target := fs.Float64("target", 0, "target condition number (0 = default)")
	seed := fs.Uint64("seed", 1, "random seed")
	_ = fs.Parse(args)
	if *in == "" || *dataDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	g := loadGraph(*in)
	start := time.Now()
	svc, err := ingrass.NewService(g, ingrass.ServiceOptions{
		Options: ingrass.Options{
			InitialDensity: *density,
			TargetCond:     *target,
			Seed:           *seed,
		},
		DataDir: *dataDir,
	})
	if err != nil {
		fatal(err)
	}
	st := svc.Stats()
	svc.Close()
	fmt.Printf("saved %s to %s: %d nodes, %d edges, sparsifier %d edges (D=%.1f%%), checkpoint at generation %d (%v)\n",
		*in, *dataDir, st.Nodes, st.GraphEdges, st.SparsifierEdges, 100*st.Density,
		st.Generation, time.Since(start).Round(time.Millisecond))
}
