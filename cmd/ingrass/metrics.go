package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ingrass/internal/obs"
	"ingrass/internal/obs/trace"
)

// HTTP-layer observability: every endpoint handler is wrapped in a
// middleware that records request latency into a per-endpoint histogram and
// counts responses per (endpoint, status class), all in the service's obs
// registry — the same registry the engine bridges its counters into, so one
// GET /metrics scrape covers the full stack.
//
// Both label vocabularies are closed: endpoints come from the fixed route
// table below and status codes are classed into the handful of values the
// API can actually produce (with 5xx/other as catch-alls). That bounds the
// exposition's cardinality no matter what clients send.

// Endpoint label values, one per route.
const (
	epEdgesAdd        = "edges_add"
	epEdgesDelete     = "edges_delete"
	epSolve           = "solve"
	epSolveBatch      = "solve_batch"
	epSparsifier      = "sparsifier"
	epResistance      = "resistance"
	epResistanceBatch = "resistance_batch"
	epResparsify      = "resparsify"
	epStats           = "stats"
	epHealthz         = "healthz"
	epMetrics         = "metrics"
	epReplCheckpoint  = "repl_checkpoint"
	epReplSegments    = "repl_segments"
	epReplStatus      = "repl_status"
	epDebugRequests   = "debug_requests"
)

var endpointNames = []string{
	epEdgesAdd, epEdgesDelete, epSolve, epSolveBatch, epSparsifier,
	epResistance, epResistanceBatch, epResparsify, epStats, epHealthz, epMetrics,
	epReplCheckpoint, epReplSegments, epReplStatus, epDebugRequests,
}

// untracedEndpoints are exempt from request tracing: scrape/liveness
// endpoints would only pollute the flight recorder, /repl/segments is a
// long-poll whose "latency" is the poll window, and tracing the debug
// endpoint that serves traces would be circular.
var untracedEndpoints = map[string]bool{
	epMetrics:        true,
	epHealthz:        true,
	epReplCheckpoint: true,
	epReplSegments:   true,
	epReplStatus:     true,
	epDebugRequests:  true,
}

// Status-code classes (codeClasses order matches codeClass indices).
var codeClasses = []string{"200", "400", "404", "408", "422", "499", "5xx", "other"}

const (
	ccOK = iota
	ccBadRequest
	ccNotFound
	ccTimeout
	ccUnprocessable
	ccClientClosed
	ccServerError
	ccOther
)

func codeClass(status int) int {
	switch status {
	case http.StatusOK:
		return ccOK
	case http.StatusBadRequest:
		return ccBadRequest
	case http.StatusNotFound:
		return ccNotFound
	case http.StatusRequestTimeout:
		return ccTimeout
	case http.StatusUnprocessableEntity:
		return ccUnprocessable
	case statusClientClosedRequest:
		return ccClientClosed
	}
	if status >= 500 && status < 600 {
		return ccServerError
	}
	return ccOther
}

type endpointMetrics struct {
	dur   *obs.Histogram
	codes [8]*obs.Counter // indexed by codeClass
}

type httpMetrics struct {
	inflight *obs.Gauge
	eps      map[string]*endpointMetrics
	// tracer opens a root span per request on traced endpoints and decides
	// retention when the request finishes. Nil disables tracing entirely.
	tracer *trace.Recorder
}

// newHTTPMetrics registers the HTTP request metrics in reg: a latency
// histogram per endpoint, a response counter per (endpoint, code), and one
// in-flight gauge. tracer may be nil (no request tracing).
func newHTTPMetrics(reg *obs.Registry, tracer *trace.Recorder) *httpMetrics {
	hm := &httpMetrics{
		inflight: reg.Gauge("ingrass_http_inflight_requests",
			"HTTP requests currently being handled"),
		eps:    make(map[string]*endpointMetrics, len(endpointNames)),
		tracer: tracer,
	}
	for _, ep := range endpointNames {
		em := &endpointMetrics{
			dur: reg.Histogram("ingrass_http_request_duration_seconds",
				"HTTP request latency by endpoint", obs.ScaleSeconds,
				obs.Label{Key: "endpoint", Value: ep}),
		}
		for i, code := range codeClasses {
			em.codes[i] = reg.Counter("ingrass_http_requests_total",
				"HTTP responses by endpoint and status class",
				obs.Label{Key: "endpoint", Value: ep},
				obs.Label{Key: "code", Value: code})
		}
		hm.eps[ep] = em
	}
	return hm
}

// metricsHandler serves the GET /metrics Prometheus text exposition of reg.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ExpositionContentType)
		if err := reg.WritePrometheus(w); err != nil {
			fmt.Fprintf(os.Stderr, "ingrass: /metrics: %v\n", err)
		}
	}
}

// statusRecorder captures the response status for the middleware. A handler
// that never calls WriteHeader implicitly responds 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying writer. Without this the recorder
// hides the server's http.Flusher and the /repl/segments long-poll
// buffers a full StreamWindow of frames instead of shipping each one
// as it lands.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap instruments one endpoint handler: latency histogram, status-class
// counter, and (on traced endpoints) a root trace span continuing any
// inbound traceparent header. Retained traces attach their ID as an
// exemplar on the latency histogram so a dashboard can jump from a slow
// bucket straight to the flight-recorder trace.
func (hm *httpMetrics) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := hm.eps[endpoint]
	traced := hm.tracer != nil && !untracedEndpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		hm.inflight.Add(1)
		defer hm.inflight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		var root trace.Span
		if traced {
			remote, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
			root = hm.tracer.StartRequest(endpoint, remote)
			if root.Tracing() {
				r = r.WithContext(trace.NewContext(r.Context(), root))
			}
		}
		h(rec, r)
		d := time.Since(start)
		em.dur.Observe(int64(d))
		em.codes[codeClass(rec.status)].Inc()
		if traced {
			if snap := hm.tracer.Finish(root, rec.status); snap != nil {
				em.dur.SetExemplar(int64(d), snap.TraceID)
			}
		}
	}
}

// endpointStats is the per-endpoint block in GET /stats: request count,
// the solver failure-mode responses (non-convergence 422, deadline 408,
// client-cancel 499), and the latency digest.
type endpointStats struct {
	Requests         uint64      `json:"requests"`
	NonConvergence   uint64      `json:"non_convergence"`
	DeadlineExceeded uint64      `json:"deadline_exceeded"`
	ClientCancelled  uint64      `json:"client_cancelled"`
	Latency          obs.Summary `json:"latency_seconds"`
}

// view snapshots the per-endpoint counters for the /stats JSON body.
func (hm *httpMetrics) view() map[string]endpointStats {
	out := make(map[string]endpointStats, len(hm.eps))
	for ep, em := range hm.eps {
		var total uint64
		for _, c := range em.codes {
			total += c.Value()
		}
		out[ep] = endpointStats{
			Requests:         total,
			NonConvergence:   em.codes[ccUnprocessable].Value(),
			DeadlineExceeded: em.codes[ccTimeout].Value(),
			ClientCancelled:  em.codes[ccClientClosed].Value(),
			Latency:          em.dur.Summarize(),
		}
	}
	return out
}

// cmdMetricsLint checks a Prometheus text exposition (stdin or -in) against
// the format rules /metrics promises: HELP/TYPE before samples, no
// duplicate series, sorted cumulative le buckets ending at +Inf, and
// _count/_sum consistency. Exit status 1 on any violation — the CI scrape
// check pipes `curl /metrics` through this.
func cmdMetricsLint(args []string) {
	fs := flag.NewFlagSet("metricslint", flag.ExitOnError)
	in := fs.String("in", "", "exposition file to lint (default stdin)")
	_ = fs.Parse(args)

	var (
		data []byte
		err  error
	)
	if *in != "" {
		data, err = os.ReadFile(*in)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	errs := obs.LintExposition(data)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "metricslint:", e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d violation(s)\n", len(errs))
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}
