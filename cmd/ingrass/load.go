package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"ingrass"
)

// cmdLoad recovers a durable data directory (checkpoint + WAL replay),
// prints the recovered state, and optionally exports the graphs or runs a
// verification solve. It is both the recovery drill ("what would a restart
// see?") and the scriptable smoke test behind CI's save → load → solve
// round trip.
func cmdLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "data directory to recover (required)")
	exportH := fs.String("export-h", "", "write the recovered sparsifier to this file")
	exportG := fs.String("export-g", "", "write the recovered original graph to this file")
	verify := fs.Bool("verify", false, "run a deterministic solve against the recovered state and check the residual")
	_ = fs.Parse(args)
	if *dataDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	start := time.Now()
	svc, err := ingrass.LoadService(ingrass.ServiceOptions{DataDir: *dataDir})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	st := svc.Stats()
	fmt.Printf("recovered %s in %v: generation %d, %d nodes, %d graph edges, sparsifier %d edges (D=%.1f%%)\n",
		*dataDir, time.Since(start).Round(time.Millisecond),
		st.Generation, st.Nodes, st.GraphEdges, st.SparsifierEdges, 100*st.Density)

	if *exportH != "" {
		h, gen := svc.SparsifierSnapshot()
		saveGraph(*exportH, h)
		fmt.Printf("wrote sparsifier (generation %d) to %s\n", gen, *exportH)
	}
	if *exportG != "" {
		g, gen := svc.OriginalSnapshot()
		saveGraph(*exportG, g)
		fmt.Printf("wrote original graph (generation %d) to %s\n", gen, *exportG)
	}
	if *verify {
		n := st.Nodes
		b := make([]float64, n)
		var mean float64
		for i := range b {
			b[i] = math.Sin(float64(i))
			mean += b[i]
		}
		for i := range b {
			b[i] -= mean / float64(n)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		_, stats, err := svc.Solve(ctx, b, ingrass.SolveOptions{Tol: 1e-8})
		if err != nil {
			fatal(fmt.Errorf("verification solve: %w", err))
		}
		if !stats.Converged {
			fatal(fmt.Errorf("verification solve did not converge (residual %g after %d iterations)",
				stats.Residual, stats.Iterations))
		}
		fmt.Printf("verify: solve converged in %d iterations (residual %.2e, preconditioner uses %d)\n",
			stats.Iterations, stats.Residual, stats.PrecondUses)
	}
}
