package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ingrass/internal/obs"
)

// cmdLoadgen drives a running `ingrass serve` instance with an open-loop
// workload and reports latency SLOs. Open-loop means arrivals follow a
// pre-generated schedule regardless of how fast the server responds — slow
// responses pile up as in-flight requests instead of silently throttling
// the offered rate, which is the only way p99 under overload means
// anything. (A closed loop, where each client waits for its response before
// sending the next request, hides exactly the queueing it should measure —
// the classic coordinated-omission trap.)
//
// The schedule is generated up front from -seed (Poisson or bursty
// arrivals at -qps across -clients independent streams, op classes drawn
// from -mix, node pairs zipf-skewed by -zipf), can be written to a trace
// file with -trace-out, and replayed bit-identically with -trace-in — so a
// latency regression can be reproduced against the exact same request
// sequence.
//
//	ingrass loadgen -url http://localhost:8080 -duration 10s -qps 200 \
//	    -clients 8 -mix solve=0.7,resist=0.2,write=0.1 -out BENCH_slo.json
func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	cfg := loadgenConfig{}
	fs.StringVar(&cfg.URL, "url", "http://localhost:8080", "base URL of the serve instance")
	fs.StringVar(&cfg.URLs, "urls", "", "comma-separated base URLs: reads round-robin across all, writes go to the first (point the first at a router or primary); overrides -url")
	fs.DurationVar(&cfg.Duration, "duration", 10*time.Second, "workload length")
	fs.Float64Var(&cfg.QPS, "qps", 100, "offered request rate (all clients combined)")
	fs.IntVar(&cfg.Clients, "clients", 4, "independent arrival streams")
	fs.StringVar(&cfg.Arrival, "arrival", "poisson", "arrival process: poisson or bursty")
	fs.Float64Var(&cfg.BurstFactor, "burst-factor", 4, "bursty: peak rate as a multiple of -qps")
	fs.DurationVar(&cfg.BurstPeriod, "burst-period", 2*time.Second, "bursty: burst cycle length")
	fs.Float64Var(&cfg.BurstDuty, "burst-duty", 0.25, "bursty: fraction of each cycle at peak rate")
	fs.StringVar(&cfg.Mix, "mix", "solve=0.7,resist=0.2,write=0.1", "op mix: class=weight,... (solve, resist, write, sweep)")
	fs.IntVar(&cfg.SweepK, "sweep-k", 16, "pairs per sweep (resistance/batch) request")
	fs.Float64Var(&cfg.Zipf, "zipf", 1.2, "zipf exponent for node-pair skew (<=1 = uniform)")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "schedule generation seed")
	fs.IntVar(&cfg.DeadlineMS, "deadline-ms", 0, "per-solve server-side deadline (0 = none)")
	fs.DurationVar(&cfg.Timeout, "timeout", 30*time.Second, "client-side HTTP timeout")
	fs.IntVar(&cfg.MaxInflight, "max-inflight", 4096, "in-flight cap; ops beyond it are shed (counted, not sent)")
	fs.StringVar(&cfg.TraceOut, "trace-out", "", "write the generated schedule to this trace file")
	fs.StringVar(&cfg.TraceIn, "trace-in", "", "replay a recorded trace instead of generating")
	fs.StringVar(&cfg.Label, "label", "", "label for the SLO report entry")
	out := fs.String("out", "", "append the SLO report to this JSON file (BENCH_slo.json schema)")
	ciSmoke := fs.Bool("ci-smoke", false, "CI gate: exit 1 unless ops ran, zero errors, and solve p99 > 0")
	_ = fs.Parse(args)

	rep, err := runLoadgen(cfg)
	if err != nil {
		fatal(err)
	}
	printSLOReport(os.Stdout, rep)
	if *out != "" {
		if err := appendSLORun(*out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("appended run %q to %s\n", rep.Label, *out)
	}
	if *ciSmoke {
		if msg := smokeViolation(rep); msg != "" {
			fmt.Fprintln(os.Stderr, "loadgen: ci-smoke FAILED:", msg)
			os.Exit(1)
		}
		fmt.Println("ci-smoke ok")
	}
}

// loadgenConfig is the full workload specification; runLoadgen is pure in
// it (plus the seed), so tests drive the harness directly.
type loadgenConfig struct {
	URL         string
	URLs        string // CSV; multi-endpoint mode (routed/replicated serving tiers)
	Duration    time.Duration
	QPS         float64
	Clients     int
	Arrival     string
	BurstFactor float64
	BurstPeriod time.Duration
	BurstDuty   float64
	Mix         string
	SweepK      int
	Zipf        float64
	Seed        uint64
	DeadlineMS  int
	Timeout     time.Duration
	MaxInflight int
	TraceOut    string
	TraceIn     string
	Label       string
}

// Workload op classes.
const (
	opClassSolve  = "solve"
	opClassResist = "resist"
	opClassWrite  = "write"
	opClassSweep  = "sweep"
)

// traceOp is one scheduled request: fire offset (microseconds from run
// start), op class, operands. The JSON-lines form of these is the trace
// file — small enough to commit, exact enough to replay.
type traceOp struct {
	AtUS   int64   `json:"at_us"`
	Class  string  `json:"class"`
	Client int     `json:"client"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	W      float64 `json:"w,omitempty"`
	Pairs  []int   `json:"pairs,omitempty"` // sweep: flattened u,v pairs
}

// parseMix parses "solve=0.7,resist=0.2,write=0.1" into normalized
// cumulative weights for class drawing.
type mixEntry struct {
	class string
	cum   float64
}

func parseMix(s string) ([]mixEntry, error) {
	var entries []mixEntry
	var total float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want class=weight)", part)
		}
		switch k {
		case opClassSolve, opClassResist, opClassWrite, opClassSweep:
		default:
			return nil, fmt.Errorf("loadgen: unknown op class %q (want solve, resist, write, or sweep)", k)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: bad mix weight %q", v)
		}
		total += w
		entries = append(entries, mixEntry{class: k, cum: total})
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	for i := range entries {
		entries[i].cum /= total
	}
	return entries, nil
}

func drawClass(mix []mixEntry, r float64) string {
	for _, e := range mix {
		if r < e.cum {
			return e.class
		}
	}
	return mix[len(mix)-1].class
}

// pairPicker draws zipf-skewed node pairs: a small set of "hot" nodes
// absorbs most of the traffic, as real query workloads do, which exercises
// the coalescing scheduler's same-pair dedup much harder than uniform
// draws would.
type pairPicker struct {
	rng  *rand.Rand
	zipf *rand.Zipf // nil = uniform
	n    int
}

func newPairPicker(rng *rand.Rand, n int, s float64) *pairPicker {
	p := &pairPicker{rng: rng, n: n}
	if s > 1 && n > 1 {
		p.zipf = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	return p
}

func (p *pairPicker) node() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

func (p *pairPicker) pair() (int, int) {
	u := p.node()
	// Offset draw guarantees v != u without rejection loops.
	v := (u + 1 + p.rng.Intn(p.n-1)) % p.n
	return u, v
}

// generateSchedule builds the time-sorted open-loop schedule: each client
// is an independent arrival stream at rate QPS/Clients, merged and sorted.
func generateSchedule(cfg loadgenConfig, n int) ([]traceOp, error) {
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: clients must be positive")
	}
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: qps must be positive")
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	picker := newPairPicker(rng, n, cfg.Zipf)
	horizon := cfg.Duration.Microseconds()
	perClient := cfg.QPS / float64(cfg.Clients)

	var ops []traceOp
	for c := 0; c < cfg.Clients; c++ {
		for at := nextArrival(cfg, rng, 0, perClient); at < horizon; at = nextArrival(cfg, rng, at, perClient) {
			op := traceOp{AtUS: at, Client: c, Class: drawClass(mix, rng.Float64())}
			switch op.Class {
			case opClassSolve, opClassResist:
				op.U, op.V = picker.pair()
			case opClassWrite:
				op.U, op.V = picker.pair()
				op.W = 0.5 + rng.Float64()
			case opClassSweep:
				k := cfg.SweepK
				if k <= 0 {
					k = 16
				}
				op.Pairs = make([]int, 0, 2*k)
				for i := 0; i < k; i++ {
					u, v := picker.pair()
					op.Pairs = append(op.Pairs, u, v)
				}
			}
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].AtUS < ops[j].AtUS })
	return ops, nil
}

// nextArrival advances one client's arrival clock from `at` (µs). Poisson
// streams draw exponential interarrivals at the client rate. Bursty
// streams are a thinned peak-rate Poisson process: candidates arrive at
// BurstFactor×rate and survive with probability 1 inside the duty window
// of each BurstPeriod cycle, and with a reduced probability outside it
// chosen so the overall mean rate stays at `rate`.
func nextArrival(cfg loadgenConfig, rng *rand.Rand, at int64, rate float64) int64 {
	expUS := func(r float64) int64 {
		us := rng.ExpFloat64() / r * 1e6
		if us < 1 {
			us = 1
		}
		if us > 3.6e9 { // cap pathological draws at one hour
			us = 3.6e9
		}
		return int64(us)
	}
	if cfg.Arrival != "bursty" {
		return at + expUS(rate)
	}
	factor := cfg.BurstFactor
	if factor <= 1 {
		return at + expUS(rate)
	}
	duty := cfg.BurstDuty
	if duty <= 0 || duty >= 1 {
		duty = 0.25
	}
	period := cfg.BurstPeriod.Microseconds()
	if period <= 0 {
		period = 2e6
	}
	// Off-window acceptance keeps the cycle mean at `rate`:
	// rate = duty·(factor·rate) + (1-duty)·offRate.
	offAccept := (1 - duty*factor) / ((1 - duty) * factor)
	if offAccept < 0 {
		offAccept = 0
	}
	for {
		at += expUS(rate * factor)
		inBurst := at%period < int64(duty*float64(period))
		if inBurst || rng.Float64() < offAccept {
			return at
		}
	}
}

func writeTrace(path string, ops []traceOp) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range ops {
		if err := enc.Encode(&ops[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readTrace(path string) ([]traceOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []traceOp
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var op traceOp
		if err := json.Unmarshal([]byte(line), &op); err != nil {
			return nil, fmt.Errorf("loadgen: trace %s: %w", path, err)
		}
		ops = append(ops, op)
	}
	return ops, sc.Err()
}

// sloClassReport is one op class's outcome: counts and the latency digest
// over successful requests (seconds).
type sloClassReport struct {
	Ops      uint64      `json:"ops"`
	OK       uint64      `json:"ok"`
	Errors   uint64      `json:"errors"`
	Timeouts uint64      `json:"timeouts"`
	Latency  obs.Summary `json:"latency_seconds"`
}

// sloReport is one loadgen run, the unit committed to BENCH_slo.json.
type sloReport struct {
	Label       string                    `json:"label,omitempty"`
	When        string                    `json:"when"`
	URL         string                    `json:"url"`
	Arrival     string                    `json:"arrival"`
	QPS         float64                   `json:"target_qps"`
	Clients     int                       `json:"clients"`
	DurationSec float64                   `json:"duration_seconds"`
	Mix         string                    `json:"mix"`
	Zipf        float64                   `json:"zipf"`
	Seed        uint64                    `json:"seed"`
	TotalOps    uint64                    `json:"total_ops"`
	OK          uint64                    `json:"ok"`
	Errors      uint64                    `json:"errors"`
	Timeouts    uint64                    `json:"timeouts"`
	Shed        uint64                    `json:"shed"`
	AchievedQPS float64                   `json:"achieved_qps"`
	Classes     map[string]sloClassReport `json:"classes"`
}

// classTracker accumulates one op class's outcomes during the run.
type classTracker struct {
	ops, ok, errors, timeouts obs.Counter
	lat                       *obs.Histogram
}

// runLoadgen executes the workload and digests the outcome. It is the
// testable core of cmdLoadgen: everything observable flows through the
// returned report.
func runLoadgen(cfg loadgenConfig) (*sloReport, error) {
	// Multi-endpoint mode targets a replicated tier directly: reads
	// round-robin across every listed endpoint, writes always go to the
	// first (a router forwards them to the primary; a primary applies them).
	bases := []string{strings.TrimRight(cfg.URL, "/")}
	if cfg.URLs != "" {
		bases = bases[:0]
		for _, u := range strings.Split(cfg.URLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				bases = append(bases, strings.TrimRight(u, "/"))
			}
		}
		if len(bases) == 0 {
			return nil, fmt.Errorf("loadgen: -urls names no endpoints")
		}
	}
	base := bases[0]
	client := &http.Client{Timeout: cfg.Timeout}

	// Node count bounds the operand space; fetched from the live /stats.
	n, err := fetchNodeCount(client, base)
	if err != nil {
		return nil, err
	}

	var ops []traceOp
	if cfg.TraceIn != "" {
		if ops, err = readTrace(cfg.TraceIn); err != nil {
			return nil, err
		}
	} else if ops, err = generateSchedule(cfg, n); err != nil {
		return nil, err
	}
	if cfg.TraceOut != "" {
		if err := writeTrace(cfg.TraceOut, ops); err != nil {
			return nil, err
		}
	}

	trackers := map[string]*classTracker{
		opClassSolve:  {lat: obs.NewHistogram(obs.ScaleSeconds)},
		opClassResist: {lat: obs.NewHistogram(obs.ScaleSeconds)},
		opClassWrite:  {lat: obs.NewHistogram(obs.ScaleSeconds)},
		opClassSweep:  {lat: obs.NewHistogram(obs.ScaleSeconds)},
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4096
	}
	slots := make(chan struct{}, maxInflight)
	var shed obs.Counter
	var wg sync.WaitGroup

	start := time.Now()
	for i := range ops {
		op := &ops[i]
		// Open loop: wait for the scheduled instant, never for the server.
		if d := time.Duration(op.AtUS)*time.Microsecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		tr := trackers[op.Class]
		if tr == nil {
			continue // unknown class in a hand-edited trace; skip
		}
		select {
		case slots <- struct{}{}:
		default:
			shed.Inc() // in-flight cap reached: shed, do not queue
			continue
		}
		target := bases[i%len(bases)]
		if op.Class == opClassWrite {
			target = base
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			executeOp(client, target, cfg, op, n, tr)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &sloReport{
		Label:       cfg.Label,
		When:        time.Now().UTC().Format(time.RFC3339),
		URL:         strings.Join(bases, ","),
		Arrival:     cfg.Arrival,
		QPS:         cfg.QPS,
		Clients:     cfg.Clients,
		DurationSec: cfg.Duration.Seconds(),
		Mix:         cfg.Mix,
		Zipf:        cfg.Zipf,
		Seed:        cfg.Seed,
		Shed:        shed.Value(),
		Classes:     make(map[string]sloClassReport, len(trackers)),
	}
	for class, tr := range trackers {
		if tr.ops.Value() == 0 {
			continue
		}
		cr := sloClassReport{
			Ops:      tr.ops.Value(),
			OK:       tr.ok.Value(),
			Errors:   tr.errors.Value(),
			Timeouts: tr.timeouts.Value(),
			Latency:  tr.lat.Summarize(),
		}
		rep.Classes[class] = cr
		rep.TotalOps += cr.Ops
		rep.OK += cr.OK
		rep.Errors += cr.Errors
		rep.Timeouts += cr.Timeouts
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.AchievedQPS = float64(rep.TotalOps) / s
	}
	return rep, nil
}

// executeOp sends one scheduled request and records its outcome. Latency is
// recorded for successful (2xx) responses only, so the quantiles measure
// service time, not error fast-paths. A server-side 408 and a client-side
// timeout both count as timeouts; everything else non-2xx is an error.
func executeOp(client *http.Client, base string, cfg loadgenConfig, op *traceOp, n int, tr *classTracker) {
	tr.ops.Inc()
	var (
		status int
		err    error
	)
	start := time.Now()
	switch op.Class {
	case opClassSolve:
		b := make([]float64, n)
		if op.U < n && op.V < n {
			b[op.U], b[op.V] = 1, -1
		} else {
			b[0], b[n-1] = 1, -1
		}
		status, err = postJSON(client, base+"/solve", solveRequest{B: b, DeadlineMS: cfg.DeadlineMS})
	case opClassResist:
		status, err = get(client, fmt.Sprintf("%s/resistance?u=%d&v=%d", base, op.U%n, op.V%n))
	case opClassWrite:
		status, err = postJSON(client, base+"/edges", edgesRequest{
			Edges: []edgeJSON{{U: op.U % n, V: op.V % n, W: op.W}},
		})
	case opClassSweep:
		pairs := make([]edgeJSON, 0, len(op.Pairs)/2)
		for i := 0; i+1 < len(op.Pairs); i += 2 {
			pairs = append(pairs, edgeJSON{U: op.Pairs[i] % n, V: op.Pairs[i+1] % n})
		}
		status, err = postJSON(client, base+"/resistance/batch", batchResistanceRequest{Pairs: pairs})
	}
	dur := time.Since(start)
	switch {
	case err != nil:
		tr.timeouts.Inc() // client-side failure: timeout or connection loss
	case status == http.StatusRequestTimeout:
		tr.timeouts.Inc()
	case status >= 200 && status < 300:
		tr.ok.Inc()
		tr.lat.Observe(dur.Nanoseconds())
	default:
		tr.errors.Inc()
	}
}

func get(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

func postJSON(client *http.Client, url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

func drain(resp *http.Response) {
	const limit = 1 << 20
	buf := make([]byte, 4096)
	var total int
	for total < limit {
		m, err := resp.Body.Read(buf)
		total += m
		if err != nil {
			break
		}
	}
	resp.Body.Close()
}

func fetchNodeCount(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, fmt.Errorf("loadgen: %s/stats unreachable: %w", base, err)
	}
	defer resp.Body.Close()
	var st struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("loadgen: decode /stats: %w", err)
	}
	if st.Nodes <= 1 {
		return 0, fmt.Errorf("loadgen: server reports %d nodes", st.Nodes)
	}
	return st.Nodes, nil
}

func printSLOReport(w *os.File, rep *sloReport) {
	fmt.Fprintf(w, "loadgen: %s arrival, target %.0f qps x %ds, %d clients, mix %s\n",
		rep.Arrival, rep.QPS, int(rep.DurationSec), rep.Clients, rep.Mix)
	fmt.Fprintf(w, "  %d ops (%.0f qps achieved), %d ok, %d errors, %d timeouts, %d shed\n",
		rep.TotalOps, rep.AchievedQPS, rep.OK, rep.Errors, rep.Timeouts, rep.Shed)
	classes := make([]string, 0, len(rep.Classes))
	for c := range rep.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	relErr := 0.0
	for _, c := range classes {
		cr := rep.Classes[c]
		fmt.Fprintf(w, "  %-7s %6d ops  p50 %8.3fms  p90 %8.3fms  p99 %8.3fms  p999 %8.3fms  max %8.3fms\n",
			c, cr.Ops, cr.Latency.P50*1e3, cr.Latency.P90*1e3, cr.Latency.P99*1e3,
			cr.Latency.P999*1e3, cr.Latency.Max*1e3)
		if cr.Latency.RelErr > relErr {
			relErr = cr.Latency.RelErr
		}
	}
	if relErr > 0 {
		fmt.Fprintf(w, "  quantiles interpolated from log-linear buckets; error <= %.1f%% relative\n", relErr*100)
	}
}

// sloFile is the BENCH_slo.json shape: a schema tag and an append-only run
// list, mirroring BENCH_solve.json so tooling can treat them alike.
type sloFile struct {
	Schema int          `json:"schema"`
	Runs   []*sloReport `json:"runs"`
}

func appendSLORun(path string, rep *sloReport) error {
	file := sloFile{Schema: 1}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("loadgen: %s exists but is not a BENCH_slo file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Runs = append(file.Runs, rep)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// smokeViolation checks the CI smoke-gate invariants; empty string = pass.
func smokeViolation(rep *sloReport) string {
	if rep.TotalOps == 0 {
		return "no operations executed"
	}
	if rep.Errors > 0 || rep.Timeouts > 0 {
		return fmt.Sprintf("%d errors, %d timeouts (want 0)", rep.Errors, rep.Timeouts)
	}
	solve, ok := rep.Classes[opClassSolve]
	if ok && !(solve.Latency.P99 > 0) {
		return "solve p99 is zero"
	}
	return ""
}
