package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ingrass"
	"ingrass/internal/obs/trace"
	"ingrass/internal/solver"
)

// cmdServe runs the HTTP front-end over a Service: snapshot-isolated reads
// and batched asynchronous writes against a live incremental sparsifier.
//
// With --data-dir the server is durable: a directory that already holds
// state is recovered (checkpoint + WAL replay; -in is then ignored), an
// empty one is initialized from the -in graph. Every applied write batch is
// logged before it becomes visible, --checkpoint-every drives periodic
// checkpoints while serving, and SIGINT/SIGTERM triggers a final checkpoint
// before exit so the next start replays an empty WAL tail.
//
// With --repl a durable server additionally ships its WAL to followers over
// GET /repl/checkpoint and /repl/segments. With --follow the server is a
// read-only follower of that primary: it bootstraps from the primary's
// checkpoint, replays the record tail through the recovery path, and serves
// the read API at its applied generation (writes answer 403).
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required unless -data-dir holds state)")
	addr := fs.String("addr", ":8080", "listen address")
	density := fs.Float64("density", 0.1, "initial sparsifier density")
	target := fs.Float64("target", 0, "target condition number (0 = default)")
	seed := fs.Uint64("seed", 1, "random seed")
	maxBatch := fs.Int("max-batch", 128, "flush the write batch at this many edges")
	flushEvery := fs.Duration("flush-interval", 2*time.Millisecond, "flush a non-empty batch after this interval")
	dataDir := fs.String("data-dir", "", "durable data directory (empty = in-memory only)")
	fsyncMode := fs.String("fsync", "always", "WAL fsync policy: always, interval, or never")
	fsyncEvery := fs.Duration("fsync-every", 100*time.Millisecond, "flush interval for -fsync=interval")
	segmentBytes := fs.Int64("segment-bytes", 64<<20, "WAL segment rotation size")
	ckptEvery := fs.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval with -data-dir (0 = only on shutdown)")
	format := fs.String("format", "auto", "frozen operator storage layout: auto, csr, or sell")
	coalesce := fs.Bool("coalesce", true, "coalesce concurrent single solves into blocked multi-RHS executions")
	batchWindow := fs.Duration("batch-window", 200*time.Microsecond, "coalescing window for the batched query engine")
	batchMax := fs.Int("batch-max", 8, "widest coalesced block (capped at 16)")
	maintain := fs.Bool("maintain", false, "enable closed-loop maintenance: background re-sparsification when a health threshold trips")
	maintainEvery := fs.Duration("maintain-every", 2*time.Second, "health-evaluation cadence for -maintain")
	iterTarget := fs.Float64("iter-target", 0, "mean solve iterations that trigger a rebuild and steer density auto-tuning (0 = off)")
	condThreshold := fs.Float64("cond-threshold", 0, "condition-number estimate that triggers a rebuild (0 = off)")
	churnFactor := fs.Float64("churn-factor", 0, "rebuild once edges churned since setup reach this multiple of the sparsifier size (0 = off)")
	densityTune := fs.Bool("density-tune", false, "auto-tune sparsifier density toward -iter-target at each rebuild")
	replicate := fs.Bool("repl", false, "serve the replication endpoints (/repl/*); requires -data-dir")
	follow := fs.String("follow", "", "run as a read-only follower of this primary base URL (e.g. http://127.0.0.1:8080)")
	followerID := fs.String("follower-id", "", "stable follower identity for primary-side segment retention (default: the listen address)")
	maxStaleness := fs.Duration("max-staleness", 0, "with -follow: refuse reads once out of contact with the primary this long (0 = serve the last applied generation indefinitely)")
	traceSample := fs.Float64("trace-sample", 0.01, "head-sampling probability for request traces (0 = only errors and slow requests are retained)")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "retain any request trace at least this slow")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this extra address (empty = disabled)")
	_ = fs.Parse(args)

	if _, err := solver.ParseFormat(*format); err != nil {
		fatal(err)
	}
	if *follow != "" && *replicate {
		fatal(fmt.Errorf("-follow and -repl are mutually exclusive: a follower does not ship a WAL"))
	}
	if *replicate && *dataDir == "" {
		fatal(fmt.Errorf("-repl requires -data-dir: the write-ahead log is the replication log"))
	}
	opts := ingrass.ServiceOptions{
		Options: ingrass.Options{
			InitialDensity: *density,
			TargetCond:     *target,
			Seed:           *seed,
		},
		MaxBatch:      *maxBatch,
		FlushInterval: *flushEvery,
		Solve:         ingrass.SolveOptions{Format: *format},
		Batch: ingrass.BatchOptions{
			Window:          *batchWindow,
			MaxBlock:        *batchMax,
			CoalesceSingles: *coalesce,
		},
		DataDir:      *dataDir,
		FsyncEvery:   *fsyncEvery,
		SegmentBytes: *segmentBytes,
		Maintenance: ingrass.MaintenanceOptions{
			Enabled:       *maintain,
			Interval:      *maintainEvery,
			IterTarget:    *iterTarget,
			CondThreshold: *condThreshold,
			ChurnFactor:   *churnFactor,
			DensityTune:   *densityTune,
		},
	}
	if *dataDir != "" {
		policy, err := ingrass.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		opts.Fsync = policy
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var svc *ingrass.Service
	switch {
	case *follow != "":
		id := *followerID
		if id == "" {
			id = *addr
		}
		var err error
		svc, err = ingrass.Follow(ctx, ingrass.FollowOptions{
			Primary:         *follow,
			ID:              id,
			MaxStaleness:    *maxStaleness,
			Solve:           opts.Solve,
			Batch:           opts.Batch,
			RetainSnapshots: opts.RetainSnapshots,
		})
		if err != nil {
			fatal(err)
		}
		if *dataDir != "" || *in != "" {
			fmt.Fprintln(os.Stderr, "ingrass: -follow replicates the primary's state; ignoring -in/-data-dir")
		}
		fmt.Printf("following %s as %q: bootstrapped at generation %d (%v)\n",
			*follow, id, svc.Generation(), time.Since(start).Round(time.Millisecond))
	case *dataDir != "":
		var err error
		svc, err = ingrass.LoadService(opts)
		switch {
		case err == nil:
			if *in != "" {
				fmt.Fprintf(os.Stderr, "ingrass: -data-dir %s holds state; ignoring -in %s\n", *dataDir, *in)
			}
			fmt.Printf("recovered %s: generation %d (%v)\n",
				*dataDir, svc.Generation(), time.Since(start).Round(time.Millisecond))
		case errors.Is(err, ingrass.ErrNoCheckpoint):
			if *in == "" {
				fatal(fmt.Errorf("-data-dir %s holds no state and no -in graph was given", *dataDir))
			}
			svc, err = ingrass.NewService(loadGraph(*in), opts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("initialized %s from %s (%v)\n",
				*dataDir, *in, time.Since(start).Round(time.Millisecond))
		default:
			fatal(err)
		}
	case *in != "":
		var err error
		svc, err = ingrass.NewService(loadGraph(*in), opts)
		if err != nil {
			fatal(err)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
	defer svc.Close()

	if *replicate {
		if _, err := svc.StartReplication(ingrass.ReplicationOptions{}); err != nil {
			fatal(err)
		}
		fmt.Println("replication enabled: shipping WAL on /repl/checkpoint and /repl/segments")
	}

	st := svc.Stats()
	fmt.Printf("serving: %d nodes, %d edges, sparsifier %d edges, generation %d (role %s)\n",
		st.Nodes, st.GraphEdges, st.SparsifierEdges, st.Generation, svc.Role())

	// Request tracing + flight recorder: the recorder's counters land in
	// the same registry /metrics scrapes, and its retained traces serve
	// GET /debug/requests.
	tracer := trace.NewRecorder(trace.Options{
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
	})
	tracer.RegisterMetrics(svc.Metrics())
	registerRuntimeMetrics(svc.Metrics(), start)
	if *debugAddr != "" {
		startDebugServer(*debugAddr)
	}

	// Periodic checkpoints bound the WAL tail a restart must replay.
	if *dataDir != "" && *follow == "" && *ckptEvery > 0 {
		go func() {
			ticker := time.NewTicker(*ckptEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if gen, err := svc.Checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "ingrass: periodic checkpoint: %v\n", err)
					} else {
						fmt.Printf("checkpoint at generation %d\n", gen)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	server := &http.Server{Addr: *addr, Handler: newServeMux(svc, tracer)}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutCtx)
		// The shutdown summary renders straight from the obs registry —
		// the same store /metrics scrapes — so the final printed counters
		// can never disagree with what monitoring collected.
		fmt.Println("final counters:")
		_ = svc.Metrics().WriteText(os.Stdout,
			"ingrass_batch_", "ingrass_http_requests_total",
			"ingrass_solves_total", "ingrass_solve_failures_total")
		if *dataDir != "" && *follow == "" {
			if gen, err := svc.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "ingrass: final checkpoint: %v\n", err)
			} else {
				fmt.Printf("final checkpoint at generation %d\n", gen)
			}
		}
	}
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w,omitempty"`
}

type edgesRequest struct {
	Edges []edgeJSON `json:"edges"`
}

// solveRequest carries the right-hand side plus the unified solve options.
// Tol/MaxIter/InnerTol/InnerIters flow unchanged down to the innermost CG
// loop; DeadlineMS bounds wall-clock time via a context deadline.
type solveRequest struct {
	B          []float64 `json:"b"`
	Tol        float64   `json:"tol,omitempty"`
	MaxIter    int       `json:"max_iter,omitempty"`
	InnerTol   float64   `json:"inner_tol,omitempty"`
	InnerIters int       `json:"inner_iters,omitempty"`
	DeadlineMS int       `json:"deadline_ms,omitempty"`
}

type solveResponse struct {
	X     []float64          `json:"x"`
	Stats ingrass.SolveStats `json:"stats"`
}

// batchSolveRequest carries many right-hand sides sharing one option set;
// they execute as blocked multi-RHS solves against one snapshot generation.
type batchSolveRequest struct {
	Bs         [][]float64 `json:"bs"`
	Tol        float64     `json:"tol,omitempty"`
	MaxIter    int         `json:"max_iter,omitempty"`
	InnerTol   float64     `json:"inner_tol,omitempty"`
	InnerIters int         `json:"inner_iters,omitempty"`
	DeadlineMS int         `json:"deadline_ms,omitempty"`
}

// batchSolveItem is one right-hand side's outcome; X is omitted when the
// column failed (Error set).
type batchSolveItem struct {
	X     []float64          `json:"x,omitempty"`
	Stats ingrass.SolveStats `json:"stats"`
	Error string             `json:"error,omitempty"`
}

type batchSolveResponse struct {
	Results    []batchSolveItem `json:"results"`
	Generation uint64           `json:"generation"`
}

type batchResistanceRequest struct {
	Pairs []edgeJSON `json:"pairs"` // w ignored
}

type batchResistanceItem struct {
	U          int     `json:"u"`
	V          int     `json:"v"`
	Resistance float64 `json:"resistance"`
	Error      string  `json:"error,omitempty"`
}

type batchResistanceResponse struct {
	Results    []batchResistanceItem `json:"results"`
	Generation uint64                `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// fieldError is the structured 400 body for request-validation failures:
// the offending field and a machine-matchable reason alongside the human
// message.
type fieldError struct {
	Error  string `json:"error"`
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// Validation reasons (fieldError.Reason).
const (
	reasonMissing        = "missing"
	reasonNotAnInteger   = "not_an_integer"
	reasonOutOfRange     = "out_of_range"
	reasonEqualEndpoints = "equal_endpoints"
)

func writeFieldError(w http.ResponseWriter, field, reason, msg string) {
	writeJSON(w, http.StatusBadRequest, fieldError{Error: msg, Field: field, Reason: reason})
}

// parseEndpoint validates one resistance endpoint query parameter: present,
// an integer, and within [0, n). A false return means the 400 has been
// written.
func parseEndpoint(w http.ResponseWriter, r *http.Request, field string, n int) (int, bool) {
	raw := r.URL.Query().Get(field)
	if raw == "" {
		writeFieldError(w, field, reasonMissing, fmt.Sprintf("query parameter %q is required", field))
		return 0, false
	}
	val, err := strconv.Atoi(raw)
	if err != nil {
		writeFieldError(w, field, reasonNotAnInteger, fmt.Sprintf("query parameter %q = %q is not an integer", field, raw))
		return 0, false
	}
	if val < 0 || val >= n {
		writeFieldError(w, field, reasonOutOfRange, fmt.Sprintf("query parameter %q = %d out of range [0, %d)", field, val, n))
		return 0, false
	}
	return val, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusClientClosedRequest is the nginx-style status for a client that
// went away mid-request; Go's net/http has no named constant for it.
const statusClientClosedRequest = 499

// solveStatus maps solver errors to HTTP statuses: exhausted iteration
// budgets are 422 (the request was understood but the tolerance is
// unreachable within budget), deadline expiry is 408, a client disconnect
// is 499, and a follower past its staleness bound is 503 (retryable on
// another replica — the router does exactly that). Anything else is a 422
// solver-side failure.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, ingrass.ErrReplicaStale):
		return http.StatusServiceUnavailable
	case errors.Is(err, ingrass.ErrCancelled):
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusRequestTimeout
		}
		return statusClientClosedRequest
	case errors.Is(err, ingrass.ErrNoConvergence):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusUnprocessableEntity
	}
}

// newServeMux wires the service endpoints:
//
//	POST   /edges       {"edges":[{"u":0,"v":1,"w":1.0}]}  insert a batch
//	DELETE /edges       {"edges":[{"u":0,"v":1}]}          delete a batch
//	POST   /solve            {"b":[...], "tol":1e-8}       Laplacian solve
//	POST   /solve/batch      {"bs":[[...],...], "tol":..}  blocked multi-RHS solve
//	GET    /sparsifier       ?gen=&format=text|json        export H
//	GET    /resistance       ?u=&v=                        effective resistance
//	POST   /resistance/batch {"pairs":[{"u":0,"v":5},..]}  blocked resistance sweep
//	POST   /resparsify                                     force a background re-sparsification
//	GET    /stats                                          engine + scheduler + per-endpoint counters (JSON)
//	GET    /metrics                                        Prometheus text exposition
//	GET    /healthz                                        liveness
//	GET    /debug/requests   ?trace=&endpoint=             flight-recorder traces (JSON)
//
// Every handler is wrapped in the httpMetrics middleware (see metrics.go),
// so request latency and response codes land in the same obs registry the
// engine exposes — /stats and /metrics are two renderings of one store.
// The middleware also roots a trace span per request (continuing an
// inbound traceparent header), so a routed request shows up as one
// stitched cross-process trace in /debug/requests.
//
// Concurrent single POST /solve requests against the same generation are
// transparently coalesced into blocked multi-RHS executions when the
// service was started with -coalesce (the default). tracer may be nil
// (requests are served untraced).
func newServeMux(svc *ingrass.Service, tracer *trace.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	hm := newHTTPMetrics(svc.Metrics(), tracer)

	decodeEdges := func(w http.ResponseWriter, r *http.Request) ([]ingrass.Edge, bool) {
		var req edgesRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return nil, false
		}
		if len(req.Edges) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no edges in request"))
			return nil, false
		}
		edges := make([]ingrass.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = ingrass.Edge{U: e.U, V: e.V, W: e.W}
		}
		return edges, true
	}

	// writeResult reports a write outcome. ErrNotDurable is NOT a
	// rejection: the write is applied and visible (retrying would apply it
	// twice), it just isn't crash-safe until the next checkpoint — so the
	// valid result goes out with a warning instead of an error status.
	// Writes against a follower are 403: the client should address the
	// primary (or a router, which forwards writes there).
	writeResult := func(w http.ResponseWriter, res ingrass.WriteResult, err error) {
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, res)
		case errors.Is(err, ingrass.ErrNotDurable):
			writeJSON(w, http.StatusOK, struct {
				ingrass.WriteResult
				Warning string `json:"warning"`
			}{res, err.Error()})
		case errors.Is(err, ingrass.ErrReadOnlyReplica):
			writeError(w, http.StatusForbidden, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
	}

	mux.HandleFunc("POST /edges", hm.wrap(epEdgesAdd, func(w http.ResponseWriter, r *http.Request) {
		edges, ok := decodeEdges(w, r)
		if !ok {
			return
		}
		res, err := svc.AddEdges(r.Context(), edges)
		writeResult(w, res, err)
	}))

	mux.HandleFunc("DELETE /edges", hm.wrap(epEdgesDelete, func(w http.ResponseWriter, r *http.Request) {
		edges, ok := decodeEdges(w, r)
		if !ok {
			return
		}
		res, err := svc.DeleteEdges(r.Context(), edges)
		writeResult(w, res, err)
	}))

	mux.HandleFunc("POST /solve", hm.wrap(epSolve, func(w http.ResponseWriter, r *http.Request) {
		var req solveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		// r.Context() is cancelled when the client disconnects, so an
		// abandoned solve stops burning CPU within one CG iteration.
		ctx := r.Context()
		if req.DeadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
			defer cancel()
		}
		x, stats, err := svc.Solve(ctx, req.B, ingrass.SolveOptions{
			Tol:        req.Tol,
			MaxIter:    req.MaxIter,
			InnerTol:   req.InnerTol,
			InnerIters: req.InnerIters,
		})
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse{X: x, Stats: stats})
	}))

	mux.HandleFunc("GET /sparsifier", hm.wrap(epSparsifier, func(w http.ResponseWriter, r *http.Request) {
		var (
			h   *ingrass.Graph
			gen uint64
		)
		if q := r.URL.Query().Get("gen"); q != "" {
			g64, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad gen: %w", err))
				return
			}
			snap, ok := svc.SparsifierAt(g64)
			if !ok {
				writeError(w, http.StatusNotFound, fmt.Errorf("generation %d not retained", g64))
				return
			}
			h, gen = snap, g64
		} else {
			h, gen = svc.SparsifierSnapshot()
		}
		if r.URL.Query().Get("format") == "json" {
			edges := h.Edges()
			out := make([]edgeJSON, len(edges))
			for i, e := range edges {
				out[i] = edgeJSON{U: e.U, V: e.V, W: e.W}
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"generation": gen,
				"nodes":      h.NumNodes(),
				"edges":      out,
			})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Ingrass-Generation", strconv.FormatUint(gen, 10))
		if err := h.Write(w); err != nil {
			// Headers are gone; nothing better to do than log.
			fmt.Fprintf(os.Stderr, "ingrass: sparsifier export: %v\n", err)
		}
	}))

	mux.HandleFunc("GET /resistance", hm.wrap(epResistance, func(w http.ResponseWriter, r *http.Request) {
		n := svc.NumNodes()
		u, ok := parseEndpoint(w, r, "u", n)
		if !ok {
			return
		}
		v, ok := parseEndpoint(w, r, "v", n)
		if !ok {
			return
		}
		if u == v {
			writeFieldError(w, "v", reasonEqualEndpoints,
				fmt.Sprintf("u and v are both %d; resistance of a node to itself is trivially 0", u))
			return
		}
		res, gen, err := svc.EffectiveResistance(r.Context(), u, v)
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"u": u, "v": v, "resistance": res, "generation": gen,
		})
	}))

	// Batch endpoints: many queries, one snapshot generation, blocked
	// multi-RHS execution underneath.
	mux.HandleFunc("POST /solve/batch", hm.wrap(epSolveBatch, func(w http.ResponseWriter, r *http.Request) {
		var req batchSolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if len(req.Bs) == 0 {
			writeFieldError(w, "bs", reasonMissing, "no right-hand sides in request")
			return
		}
		ctx := r.Context()
		if req.DeadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
			defer cancel()
		}
		results, gen, err := svc.SolveBatch(ctx, req.Bs, ingrass.SolveOptions{
			Tol:        req.Tol,
			MaxIter:    req.MaxIter,
			InnerTol:   req.InnerTol,
			InnerIters: req.InnerIters,
		})
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		items := make([]batchSolveItem, len(results))
		for i, res := range results {
			items[i] = batchSolveItem{X: res.X, Stats: res.Stats}
			if res.Err != nil {
				items[i].Error = res.Err.Error()
				items[i].X = nil
			}
		}
		writeJSON(w, http.StatusOK, batchSolveResponse{Results: items, Generation: gen})
	}))

	mux.HandleFunc("POST /resistance/batch", hm.wrap(epResistanceBatch, func(w http.ResponseWriter, r *http.Request) {
		var req batchResistanceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if len(req.Pairs) == 0 {
			writeFieldError(w, "pairs", reasonMissing, "no pairs in request")
			return
		}
		pairs := make([]ingrass.Pair, len(req.Pairs))
		for i, p := range req.Pairs {
			pairs[i] = ingrass.Pair{U: p.U, V: p.V}
		}
		results, gen, err := svc.EffectiveResistanceBatch(r.Context(), pairs)
		if err != nil {
			writeError(w, solveStatus(err), err)
			return
		}
		items := make([]batchResistanceItem, len(results))
		for i, res := range results {
			items[i] = batchResistanceItem{U: res.U, V: res.V, Resistance: res.Resistance}
			if res.Err != nil {
				items[i].Error = res.Err.Error()
			}
		}
		writeJSON(w, http.StatusOK, batchResistanceResponse{Results: items, Generation: gen})
	}))

	// POST /resparsify forces a background setup-basis rebuild + swap — the
	// manual form of what -maintain triggers automatically. 409 when one is
	// already in flight.
	mux.HandleFunc("POST /resparsify", hm.wrap(epResparsify, func(w http.ResponseWriter, r *http.Request) {
		gen, err := svc.ForceResparsify(r.Context())
		if err != nil {
			status := http.StatusUnprocessableEntity
			switch {
			case errors.Is(err, ingrass.ErrRebuildInProgress):
				status = http.StatusConflict
			case errors.Is(err, ingrass.ErrReadOnlyReplica):
				status = http.StatusForbidden
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"generation": gen})
	}))

	mux.HandleFunc("GET /stats", hm.wrap(epStats, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsResponse{
			ServiceStats: svc.Stats(),
			Endpoints:    hm.view(),
		})
	}))

	mux.HandleFunc("GET /metrics", hm.wrap(epMetrics, metricsHandler(svc.Metrics())))

	// Liveness plus routing hints: role says how this process participates
	// in replication, ready is false on a follower until its first full
	// catch-up with the primary. The status stays 200 while not ready —
	// routers read the body and keep cold followers out of rotation without
	// mistaking them for dead.
	mux.HandleFunc("GET /healthz", hm.wrap(epHealthz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"role":   svc.Role(),
			"ready":  svc.Ready(),
		})
	}))

	// The flight recorder: the K slowest and all failed request traces per
	// endpoint, newest first, filterable by ?trace= and ?endpoint=.
	mux.HandleFunc("GET /debug/requests", hm.wrap(epDebugRequests, tracer.Handler()))

	// A replication primary additionally ships checkpoints and the WAL
	// record tail; followers and their fetch loops are the only intended
	// clients.
	if rh := svc.Replication(); rh != nil {
		mux.HandleFunc("GET /repl/checkpoint", hm.wrap(epReplCheckpoint, rh.Checkpoint))
		mux.HandleFunc("GET /repl/segments", hm.wrap(epReplSegments, rh.Segments))
		mux.HandleFunc("GET /repl/status", hm.wrap(epReplStatus, rh.Status))
	}

	return mux
}

// statsResponse is the GET /stats body: the engine counters plus the
// per-endpoint HTTP request/failure-mode/latency blocks, both read from the
// same obs registry a /metrics scrape renders.
type statsResponse struct {
	ingrass.ServiceStats
	Endpoints map[string]endpointStats `json:"endpoints"`
}
