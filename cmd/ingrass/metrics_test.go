package main

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ingrass"
	"ingrass/internal/obs"
)

// TestMetricsEndpointExposition scrapes a live server after real traffic
// and checks the exposition end to end: correct content type, zero lint
// violations, and the specific series the dashboards key on.
func TestMetricsEndpointExposition(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	b := make([]float64, 36)
	b[0], b[35] = 1, -1
	var sr solveResponse
	if r := doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: b}, &sr); r.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", r.StatusCode)
	}
	resp, err := srv.Client().Get(srv.URL + "/resistance?u=0&v=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.ExpositionContentType {
		t.Errorf("content type %q, want %q", got, obs.ExpositionContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintExposition(data); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
	}
	out := string(data)
	for _, want := range []string{
		`ingrass_http_requests_total{code="200",endpoint="solve"} 1`,
		`ingrass_http_request_duration_seconds_count{endpoint="solve"} 1`,
		"ingrass_solves_total 1",
		"ingrass_resistance_queries_total 1",
		`ingrass_solve_failures_total{mode="no_convergence"} 0`,
		"ingrass_generation 0",
		"ingrass_solve_duration_seconds_count 1",
		"ingrass_kernel_forks_total",
		`ingrass_operator_format{format="csr"} 1`,
		`ingrass_operator_format{format="sell"} 0`,
		`ingrass_spmv_duration_seconds_count{format="csr"}`,
		`ingrass_spmv_duration_seconds_count{format="sell"} 0`,
		"ingrass_operator_arena_reserved_bytes 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsFailureModeCounters forces each solver failure mode through the
// HTTP layer and checks both views over the shared registry: the
// per-endpoint block in /stats and the engine-level counters.
func TestStatsFailureModeCounters(t *testing.T) {
	svc := testService(t)
	srv := httptest.NewServer(newServeMux(svc, nil))
	defer srv.Close()

	b := make([]float64, 36)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	// 422 over HTTP: a one-iteration budget cannot reach the tolerance.
	var e errorResponse
	if r := doJSON(t, srv, http.MethodPost, "/solve", solveRequest{B: b, Tol: 1e-15, MaxIter: 1}, &e); r.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("starved solve: %d", r.StatusCode)
	}
	// Deadline and client-cancel are timing races over HTTP (a 36-node
	// solve can finish inside any deadline the API accepts), so drive the
	// engine classifier deterministically with contexts that are already
	// dead — the same code path a mid-solve expiry takes.
	x := make([]float64, len(b))
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := svc.SolveInto(expired, x, b, ingrass.SolveOptions{}); err == nil {
		t.Fatal("expired-deadline solve succeeded")
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := svc.SolveInto(cancelled, x, b, ingrass.SolveOptions{}); err == nil {
		t.Fatal("cancelled solve succeeded")
	}

	var st statsResponse
	if r := doJSON(t, srv, http.MethodGet, "/stats", nil, &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	if st.SolveNoConvergence != 1 || st.SolveDeadlineExceeded != 1 || st.SolveCancelled != 1 {
		t.Errorf("engine failure counters: no_conv=%d deadline=%d cancel=%d, want 1 each",
			st.SolveNoConvergence, st.SolveDeadlineExceeded, st.SolveCancelled)
	}
	ep, ok := st.Endpoints["solve"]
	if !ok {
		t.Fatalf("stats has no solve endpoint block: %v", st.Endpoints)
	}
	if ep.Requests != 1 || ep.NonConvergence != 1 {
		t.Errorf("solve endpoint block %+v, want 1 request, 1 non-convergence", ep)
	}
	if st.SolveLatency.Count == 0 {
		t.Errorf("solve latency summary empty: %+v", st.SolveLatency)
	}
}

// TestShutdownSummarySource renders the shutdown summary the way cmdServe
// does — straight from the registry — and checks the batch counters appear,
// so the printed summary cannot drift from what /metrics scraped.
func TestShutdownSummarySource(t *testing.T) {
	svc := testService(t)
	var sb strings.Builder
	if err := svc.Metrics().WriteText(&sb, "ingrass_batch_", "ingrass_solves_total"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ingrass_batch_groups_total", "ingrass_batch_queue_depth", "ingrass_solves_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("shutdown summary missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ingrass_wal_appends_total") {
		t.Errorf("prefix filter leaked unrelated families:\n%s", out)
	}
}

func TestCodeClassMapping(t *testing.T) {
	cases := map[int]int{
		200: ccOK, 400: ccBadRequest, 404: ccNotFound, 408: ccTimeout,
		422: ccUnprocessable, 499: ccClientClosed, 500: ccServerError,
		503: ccServerError, 302: ccOther, 201: ccOther,
	}
	for status, want := range cases {
		if got := codeClass(status); got != want {
			t.Errorf("codeClass(%d) = %d, want %d", status, got, want)
		}
	}
}

// TestMiddlewareForwardsFlush: the status-recording middleware must not
// hide the server's http.Flusher. GET /repl/segments streams framed
// records through this wrapper, and a swallowed Flush buffers a full
// StreamWindow of frames — 30s replication latency that the raw-mux
// tests in internal/repl cannot observe.
func TestMiddlewareForwardsFlush(t *testing.T) {
	var _ http.Flusher = (*statusRecorder)(nil)

	hm := newHTTPMetrics(obs.NewRegistry(), nil)
	h := hm.wrap(epReplSegments, func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hides http.Flusher from the handler")
		}
		io.WriteString(w, "frame")
		f.Flush()
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/repl/segments?from=0", nil))
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying ResponseWriter")
	}
}
