// Command graphgen generates benchmark graphs and edge streams as text
// files consumable by cmd/ingrass.
//
//	graphgen -case g2_circuit -scale 1 -out g2.txt
//	graphgen -case delaunay_n14 -out d14.txt -stream d14_new.txt -stream-count 5000
//	graphgen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ingrass"
)

func main() {
	var (
		name        = flag.String("case", "", "benchmark name (see -list)")
		scale       = flag.Float64("scale", 1.0, "size multiplier")
		seed        = flag.Uint64("seed", 1, "random seed")
		out         = flag.String("out", "", "output graph file (required unless -list)")
		stream      = flag.String("stream", "", "optional output file for a new-edge stream")
		streamCount = flag.Int("stream-count", 0, "stream size (default: 24% of |E|)")
		local       = flag.Bool("local", false, "draw short-range stream pairs instead of uniform chords")
		list        = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range ingrass.TestCases() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := ingrass.Generate(*name, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := g.Write(w); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: wrote %s (%d nodes, %d edges)\n", *name, *out, g.NumNodes(), g.NumEdges())

	if *stream != "" {
		count := *streamCount
		if count <= 0 {
			count = int(0.24 * float64(g.NumEdges()))
		}
		batches, err := ingrass.NewEdgeStream(g, count, 1, *local, *seed+1)
		if err != nil {
			fatal(err)
		}
		sf, err := os.Create(*stream)
		if err != nil {
			fatal(err)
		}
		sw := bufio.NewWriter(sf)
		for _, b := range batches {
			for _, e := range b {
				fmt.Fprintf(sw, "%d %d %.17g\n", e.U, e.V, e.W)
			}
		}
		if err := sw.Flush(); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("stream: wrote %s (%d edges)\n", *stream, count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
