// Command experiments regenerates the paper's evaluation artifacts on the
// synthetic benchmark suite:
//
//	experiments -table 1 [-cases a,b,c] [-scale 1] [-seed 1]
//	experiments -table 2 ...
//	experiments -table 3 [-case g2_circuit]
//	experiments -fig 4 [-cases delaunay_n14,delaunay_n15,...]
//	experiments -all
//
// Scale 1 is laptop-friendly; the paper's graph sizes correspond to scale
// 10-100 on the larger families. Output is the same row layout as the
// paper's tables so measured and published numbers can be compared side by
// side (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ingrass/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table to reproduce: 1, 2, or 3")
		fig      = flag.Int("fig", 0, "figure to reproduce: 4")
		all      = flag.Bool("all", false, "run every table and figure")
		cases    = flag.String("cases", "", "comma-separated test cases (default: a representative subset)")
		oneCase  = flag.String("case", "g2_circuit", "test case for -table 3")
		scale    = flag.Float64("scale", 1.0, "benchmark size multiplier")
		seed     = flag.Uint64("seed", 1, "random seed")
		iters    = flag.Int("iters", 10, "update iterations (paper: 10)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		condIter = flag.Int("cond-iters", 40, "power iterations per condition-number estimate")
	)
	flag.Parse()

	p := bench.Params{
		Scale:      *scale,
		Seed:       *seed,
		Iterations: *iters,
		Workers:    *workers,
		CondIters:  *condIter,
	}.WithDefaults()

	defaultCases := []string{"g2_circuit", "fe_4elt2", "fe_sphere", "delaunay_n14", "delaunay_n15", "social_ba"}
	names := defaultCases
	if *cases != "" {
		names = strings.Split(*cases, ",")
	}

	ran := false
	start := time.Now()
	if *all || *table == 1 {
		ran = true
		runTable1(names, p)
	}
	if *all || *table == 2 {
		ran = true
		runTable2(names, p)
	}
	if *all || *table == 3 {
		ran = true
		runTable3(*oneCase, p)
	}
	if *all || *fig == 4 {
		ran = true
		figCases := names
		if *cases == "" {
			figCases = []string{"delaunay_n14", "delaunay_n15", "delaunay_n16"}
		}
		runFig4(figCases, p)
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table N, -fig 4, or -all")
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func runTable1(names []string, p bench.Params) {
	fmt.Println("== Table I: GRASS time vs inGRASS setup time ==")
	rows, err := bench.RunTable1(names, p)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatTable1(rows))
	fmt.Println()
}

func runTable2(names []string, p bench.Params) {
	fmt.Println("== Table II: 10-iteration incremental sparsification (GRASS vs inGRASS vs Random) ==")
	rows, err := bench.RunTable2(names, p)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatTable2(rows))
	fmt.Println()
}

func runTable3(name string, p bench.Params) {
	fmt.Printf("== Table III: robustness across initial densities (%s) ==\n", name)
	rows, err := bench.RunTable3(name, []float64{0.127, 0.118, 0.09, 0.076, 0.066}, p)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatTable3(rows))
	fmt.Println()
}

func runFig4(names []string, p bench.Params) {
	fmt.Println("== Fig. 4: runtime scalability (GRASS vs inGRASS) ==")
	points, err := bench.RunFig4(names, p)
	if err != nil {
		fatal(err)
	}
	fmt.Print(bench.FormatFig4(points))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
