package ingrass

import (
	"context"

	"ingrass/internal/partition"
)

// Partition is a two-way spectral split of a graph's nodes.
type Partition struct {
	// Side assigns each node 0 or 1; sides are balanced to within one node.
	Side []int
	// CutWeight is the total weight of crossing edges.
	CutWeight float64
	// Conductance is CutWeight over the smaller side's volume.
	Conductance float64
}

// SpectralBisect computes a balanced spectral bisection of g (Fiedler
// vector by inverse power iteration, median threshold) — one of the
// downstream applications spectral sparsifiers accelerate. g must be
// connected.
func SpectralBisect(g *Graph, seed uint64) (*Partition, error) {
	b, err := partition.Bisect(context.Background(), g.g, partition.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Partition{Side: b.Side, CutWeight: b.CutWeight, Conductance: b.Conductance}, nil
}

// SpectralBisectSparsified computes the Fiedler vector on the sparsifier h
// (much cheaper per solve) and returns the induced partition of g,
// evaluated against g's true edge weights. The partition quality tracks the
// full-graph bisection whenever kappa(L_G, L_H) is small.
func SpectralBisectSparsified(g, h *Graph, seed uint64) (*Partition, error) {
	b, err := partition.BisectWithSparsifier(context.Background(), g.g, h.g, partition.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Partition{Side: b.Side, CutWeight: b.CutWeight, Conductance: b.Conductance}, nil
}
