package ingrass

import (
	"bytes"
	"math"
	"testing"
)

// paperFig1Graph builds a small mesh-like graph in the spirit of the
// paper's running example (Figs. 1-3): a 4x4 grid with a couple of chords.
func paperFig1Graph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(16)
	id := func(i, j int) int { return i*4 + j }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j+1 < 4 {
				if _, err := g.AddEdge(id(i, j), id(i, j+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if i+1 < 4 {
				if _, err := g.AddEdge(id(i, j), id(i+1, j), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func TestGraphBasicsPublic(t *testing.T) {
	g := NewGraph(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatal("fresh graph wrong size")
	}
	if _, err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop must error")
	}
	if _, err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out of range must error")
	}
	if _, err := g.AddEdge(0, 1, -1); err == nil {
		t.Fatal("negative weight must error")
	}
	i, err := g.AddEdge(0, 1, 2.5)
	if err != nil || i != 0 {
		t.Fatalf("AddEdge: %d %v", i, err)
	}
	e, err := g.Edge(0)
	if err != nil || e.W != 2.5 {
		t.Fatalf("Edge: %+v %v", e, err)
	}
	if _, err := g.Edge(5); err == nil {
		t.Fatal("bad index must error")
	}
	if !g.HasEdge(1, 0) || g.Degree(0) != 1 {
		t.Fatal("adjacency wrong")
	}
	if g.TotalWeight() != 2.5 {
		t.Fatal("weight wrong")
	}
	if id := g.AddNode(); id != 3 {
		t.Fatalf("AddNode gave %d", id)
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}

func TestGraphIO(t *testing.T) {
	g := paperFig1Graph(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed size")
	}
}

func TestQuadraticForm(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	q, err := g.QuadraticForm([]float64{1, 0})
	if err != nil || q != 3 {
		t.Fatalf("q=%v err=%v", q, err)
	}
	if _, err := g.QuadraticForm([]float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestSparsifyPublic(t *testing.T) {
	g, err := Generate("g2_circuit", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Sparsify(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsConnected() {
		t.Fatal("sparsifier must be connected")
	}
	if h.NumEdges() >= g.NumEdges() {
		t.Fatal("sparsifier not sparser")
	}
	d := h.OffTreeDensity(g.NumEdges())
	if math.Abs(d-0.1) > 0.02 {
		t.Fatalf("density %v", d)
	}
}

func TestIncrementalLifecycle(t *testing.T) {
	g, err := Generate("fe_4elt2", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	origEdges := g.NumEdges()
	inc, err := NewIncremental(g, Options{InitialDensity: 0.1, TargetCond: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inc.FilterLevel() < 1 {
		t.Fatal("filter level must be >= 1")
	}
	stream, err := NewEdgeStream(g, 60, 3, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total UpdateReport
	for _, batch := range stream {
		rep, err := inc.AddEdges(batch)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Processed != len(batch) {
			t.Fatalf("processed %d of %d", rep.Processed, len(batch))
		}
		if rep.Included+rep.Merged+rep.Redistributed != rep.Processed {
			t.Fatalf("report inconsistent: %+v", rep)
		}
		if len(rep.Actions) != rep.Processed {
			t.Fatal("actions list wrong length")
		}
		total.Included += rep.Included
		total.Merged += rep.Merged
		total.Redistributed += rep.Redistributed
	}
	// G grew by the stream; H grew by at most the included count.
	if inc.Original().NumEdges() != origEdges+60 {
		t.Fatalf("G has %d edges, want %d", inc.Original().NumEdges(), origEdges+60)
	}
	if total.Included == 60 {
		t.Fatal("no filtering happened at all")
	}
	if inc.Density() <= 0 {
		t.Fatal("density must be positive")
	}
	// Resparsify and keep going.
	if err := inc.Resparsify(); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddEdges([]Edge{{U: 0, V: g.NumNodes() - 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRejectsBadEdges(t *testing.T) {
	g := paperFig1Graph(t)
	inc, err := NewIncremental(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddEdges([]Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Fatal("self-loop must error")
	}
	if _, err := inc.AddEdges([]Edge{{U: 0, V: 99, W: 1}}); err == nil {
		t.Fatal("out-of-range must error")
	}
}

func TestNewIncrementalWith(t *testing.T) {
	g := paperFig1Graph(t)
	h, err := Sparsify(g, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalWith(g, h, Options{TargetCond: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Sparsifier().NumEdges() != h.NumEdges() {
		t.Fatal("provided sparsifier not adopted")
	}
}

func TestConditionNumberPublic(t *testing.T) {
	g := paperFig1Graph(t)
	k, err := ConditionNumber(g, g.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 0.01 {
		t.Fatalf("kappa(G,G) = %v", k)
	}
	// Against a spanning tree: strictly worse.
	tree, err := Sparsify(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := ConditionNumber(g, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kt <= k {
		t.Fatalf("tree kappa %v should exceed identity %v", kt, k)
	}
}

// Figure 2 semantics: the multilevel embedding assigns every node a
// cluster per level; nodes sharing a cluster at a level have their
// resistance bounded by that cluster's diameter, visible through the
// incremental sparsifier's distortion ordering.
func TestFigure2EmbeddingSemantics(t *testing.T) {
	g, err := Generate("fe_4elt2", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(g, Options{InitialDensity: 0.1, TargetCond: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A long-range chord should carry at least as much estimated
	// distortion as a short-range one of the same weight, usually more.
	n := g.NumNodes()
	stream := []Edge{
		{U: 0, V: n - 1, W: 1}, // far corner pair
		{U: 0, V: 1, W: 1},     // adjacent-ish pair
	}
	rep, err := inc.AddEdges(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Processed != 2 {
		t.Fatal("both edges must be processed")
	}
}

func TestGenerateAndTestCases(t *testing.T) {
	names := TestCases()
	if len(names) < 10 {
		t.Fatalf("registry too small: %v", names)
	}
	if _, err := Generate("bogus", 1, 1); err == nil {
		t.Fatal("unknown name must error")
	}
	g, err := Generate("delaunay_n14", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("generated graph must be connected")
	}
}

func TestGeneratorFacades(t *testing.T) {
	if _, err := GeneratePowerGrid(8, 8, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTriMesh(8, 8, 1.5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateDelaunay(50, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateBarabasiAlbert(100, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GeneratePowerGrid(1, 1, 0, 1); err == nil {
		t.Fatal("bad dims must error")
	}
}

func TestNewEdgeStreamPublic(t *testing.T) {
	g, err := GeneratePowerGrid(15, 15, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := NewEdgeStream(g, 40, 4, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 {
		t.Fatalf("batches %d", len(batches))
	}
	count := 0
	for _, b := range batches {
		count += len(b)
	}
	if count != 40 {
		t.Fatalf("stream size %d", count)
	}
}

func TestUpdateActionString(t *testing.T) {
	if ActionIncluded.String() != "included" ||
		ActionMerged.String() != "merged" ||
		ActionRedistributed.String() != "redistributed" {
		t.Fatal("action names wrong")
	}
	if UpdateAction(7).String() == "" {
		t.Fatal("unknown action must render")
	}
}

// End-to-end: incremental updates keep kappa near the target while staying
// much sparser than including everything (the paper's headline claim, at
// unit-test scale).
func TestEndToEndQualityShape(t *testing.T) {
	g, err := GeneratePowerGrid(14, 14, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(g, Options{InitialDensity: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	h0 := inc.Sparsifier().Clone()
	stream, err := NewEdgeStream(g, 100, 5, false, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if _, err := inc.AddEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	kUpdated, err := ConditionNumber(inc.Original(), inc.Sparsifier(), 13)
	if err != nil {
		t.Fatal(err)
	}
	kFrozen, err := ConditionNumber(inc.Original(), h0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if kUpdated >= kFrozen {
		t.Fatalf("updates did not improve kappa: %v vs %v", kUpdated, kFrozen)
	}
}
