package ingrass

import (
	"context"
	"fmt"
	"time"

	"ingrass/internal/batch"
	"ingrass/internal/sparse"
)

// MaxBlockWidth is the widest multi-RHS block one blocked solve iterates in
// lockstep. SolveBatch and EffectiveResistanceBatch accept any number of
// items and chunk them into blocks of at most this width (and at most
// BatchOptions.MaxBlock) transparently.
const MaxBlockWidth = sparse.MaxBlockWidth

// BatchOptions configures the batched query engine: the scheduler that
// coalesces concurrent same-generation solve and resistance requests into
// blocked multi-RHS executions, and the blocked execution itself. The zero
// value means all defaults.
type BatchOptions struct {
	// Window is how long an open coalescing group waits for companions
	// before executing anyway (default 200µs — far below a warm solve, so
	// under load groups fill to MaxBlock and the window only bounds
	// idle-time latency).
	Window time.Duration
	// MaxBlock is the widest coalesced group (default 8, capped at
	// MaxBlockWidth). Explicit SolveBatch calls chunk to this width too.
	MaxBlock int
	// QueueCap bounds admitted-but-unexecuted scheduler requests; further
	// submitters block until capacity frees or their context expires
	// (default 1024).
	QueueCap int
	// Workers is the number of scheduler executor goroutines (default
	// GOMAXPROCS).
	Workers int
	// CoalesceSingles routes single Service.Solve and EffectiveResistance
	// calls through the coalescing scheduler, so concurrent same-generation
	// requests transparently share blocked executions. Answers are
	// bit-identical to the direct path; the trade is up to Window of added
	// latency on an idle service. `ingrass serve` enables this.
	CoalesceSingles bool
}

func (o BatchOptions) internal() batch.Options {
	mb := o.MaxBlock
	if mb > MaxBlockWidth {
		mb = MaxBlockWidth
	}
	return batch.Options{
		Window:   o.Window,
		MaxBlock: mb,
		QueueCap: o.QueueCap,
		Workers:  o.Workers,
	}
}

// blockWidth is the chunk width explicit batches execute at.
func (s *Service) blockWidth() int {
	w := s.batchOpts.MaxBlock
	if w <= 0 {
		w = 8
	}
	if w > MaxBlockWidth {
		w = MaxBlockWidth
	}
	return w
}

// BatchSolveResult is one right-hand side's outcome of a SolveBatch call.
type BatchSolveResult struct {
	// X is the solution column (mean-zero). It is valid even when Err is
	// ErrNoConvergence (the best iterate found).
	X []float64 `json:"x"`
	// Stats reports the column's solve.
	Stats SolveStats `json:"stats"`
	// Err is the column's terminal error, nil on convergence. One column
	// failing never aborts its siblings.
	Err error `json:"-"`
}

// SolveBatch solves L_G x_i = b_i for every right-hand side against one
// snapshot generation, executing the batch as blocked multi-RHS solves that
// traverse the graph and sparsifier structures once per iteration for a
// whole block — at 8 right-hand sides this beats 8 independent solves by
// well over the coalescing target (see BENCH_solve.json). Each column's
// answer is bit-identical to an independent Solve of that b_i with the same
// options.
//
// All right-hand sides share one option set and one generation (the current
// snapshot at call time); per-column outcomes are reported independently.
// ctx cancels the whole batch.
func (s *Service) SolveBatch(ctx context.Context, bs [][]float64, opts SolveOptions) ([]BatchSolveResult, uint64, error) {
	if err := s.readGate(); err != nil {
		return nil, 0, err
	}
	snap := s.eng.Current()
	n := snap.G.NumNodes()
	if len(bs) == 0 {
		return nil, snap.Gen, fmt.Errorf("ingrass: SolveBatch with no right-hand sides")
	}
	for i, b := range bs {
		if len(b) != n {
			return nil, snap.Gen, fmt.Errorf("ingrass: SolveBatch rhs %d length %d != %d nodes", i, len(b), n)
		}
	}
	results := make([]BatchSolveResult, len(bs))
	w := s.blockWidth()
	out := make([]sparse.ColumnResult, w)
	xs := make([][]float64, 0, w)
	for lo := 0; lo < len(bs); lo += w {
		hi := lo + w
		if hi > len(bs) {
			hi = len(bs)
		}
		xs = xs[:0]
		for i := lo; i < hi; i++ {
			results[i].X = make([]float64, n)
			xs = append(xs, results[i].X)
		}
		bst, err := s.eng.SolveBlock(ctx, snap, xs, bs[lo:hi], out[:hi-lo], opts.internal())
		if err != nil {
			return results, snap.Gen, err
		}
		for i := lo; i < hi; i++ {
			cr := out[i-lo]
			results[i].Stats = SolveStats{
				Iterations:  cr.Iterations,
				Residual:    cr.Residual,
				Converged:   cr.Converged,
				PrecondUses: bst.InnerUses,
				Generation:  snap.Gen,
			}
			results[i].Err = cr.Err
		}
	}
	return results, snap.Gen, nil
}

// Pair is one effective-resistance query endpoint pair.
type Pair struct {
	U int `json:"u"`
	V int `json:"v"`
}

// PairResult is one pair's outcome of an EffectiveResistanceBatch call.
type PairResult struct {
	Pair
	Resistance float64 `json:"resistance"`
	// Err is the pair's terminal error (validation or solve), nil on
	// success. One pair failing never aborts its siblings.
	Err error `json:"-"`
}

// EffectiveResistanceBatch computes the effective resistance of every pair
// against one snapshot generation, sharing blocked solves across the sweep:
// k pairs cost ceil(k / MaxBlock) blocked solves instead of k full solves,
// which is the amortization a resistance sweep (the inGRASS edge-importance
// primitive) wants. Invalid pairs (endpoints out of range) fail
// individually; u == v pairs report zero resistance without solving.
func (s *Service) EffectiveResistanceBatch(ctx context.Context, pairs []Pair) ([]PairResult, uint64, error) {
	if err := s.readGate(); err != nil {
		return nil, 0, err
	}
	snap := s.eng.Current()
	n := snap.G.NumNodes()
	if len(pairs) == 0 {
		return nil, snap.Gen, fmt.Errorf("ingrass: EffectiveResistanceBatch with no pairs")
	}
	results := make([]PairResult, len(pairs))
	// Pairs needing a solve, by original index.
	todo := make([]int, 0, len(pairs))
	for i, p := range pairs {
		results[i].Pair = p
		switch {
		case p.U < 0 || p.U >= n || p.V < 0 || p.V >= n:
			results[i].Err = fmt.Errorf("ingrass: resistance endpoints (%d, %d) out of range [0, %d)", p.U, p.V, n)
		case p.U == p.V:
			// Zero by definition; no column needed.
		default:
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return results, snap.Gen, nil
	}
	w := s.blockWidth()
	bs := make([][]float64, 0, w)
	xs := make([][]float64, 0, w)
	out := make([]sparse.ColumnResult, w)
	for lo := 0; lo < len(todo); lo += w {
		hi := lo + w
		if hi > len(todo) {
			hi = len(todo)
		}
		bs, xs = bs[:0], xs[:0]
		for _, i := range todo[lo:hi] {
			b := make([]float64, n)
			b[pairs[i].U] = 1
			b[pairs[i].V] = -1
			bs = append(bs, b)
			xs = append(xs, make([]float64, n))
		}
		if _, err := s.eng.SolveBlock(ctx, snap, xs, bs, out[:hi-lo], SolveOptions{}.internal()); err != nil {
			return results, snap.Gen, err
		}
		for k, i := range todo[lo:hi] {
			if cr := out[k]; cr.Err != nil {
				results[i].Err = cr.Err
			} else {
				results[i].Resistance = xs[k][pairs[i].U] - xs[k][pairs[i].V]
			}
		}
	}
	return results, snap.Gen, nil
}

// NumNodes returns the node count of the currently served snapshot (node
// identity is append-free in this service, so the count is stable per
// process lifetime and usable for request validation).
func (s *Service) NumNodes() int { return s.eng.Current().G.NumNodes() }
