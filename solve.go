package ingrass

import (
	"fmt"

	"ingrass/internal/precond"
	"ingrass/internal/sparse"
)

// SolveStats reports a preconditioned Laplacian solve.
type SolveStats struct {
	// Iterations is the outer FCG iteration count.
	Iterations int
	// Residual is the final relative residual.
	Residual float64
	// Converged reports whether the tolerance was met.
	Converged bool
	// PrecondUses counts inner sparsifier solves.
	PrecondUses int
	// Generation is the snapshot generation that served the solve. Only
	// set by Service.Solve; standalone SolveLaplacian leaves it zero.
	Generation uint64
}

// SolveLaplacian solves the Laplacian system L_G x = b using flexible
// conjugate gradients preconditioned by the sparsifier h — the downstream
// application (fast circuit-style solves) that motivates maintaining a
// sparsifier in the first place. b must be mean-zero up to rounding (the
// system is singular with the constant null space); it is centered
// internally, and the returned solution is mean-zero.
//
// tol is the relative residual target (0 means 1e-8). Pass the live
// sparsifier of an Incremental to keep solve cost tracking the evolving
// graph.
func SolveLaplacian(g, h *Graph, b []float64, tol float64) ([]float64, SolveStats, error) {
	if len(b) != g.NumNodes() {
		return nil, SolveStats{}, fmt.Errorf("ingrass: rhs length %d != %d nodes", len(b), g.NumNodes())
	}
	if h.NumNodes() != g.NumNodes() {
		return nil, SolveStats{}, fmt.Errorf("ingrass: sparsifier node count mismatch")
	}
	p, err := precond.New(h.g, precond.Options{})
	if err != nil {
		return nil, SolveStats{}, err
	}
	x := make([]float64, g.NumNodes())
	res, err := p.Solve(g.g, x, b, &sparse.CGOptions{Tol: tol})
	stats := SolveStats{
		Iterations:  res.Outer.Iterations,
		Residual:    res.Outer.Residual,
		Converged:   res.Outer.Converged,
		PrecondUses: res.InnerUses,
	}
	if err != nil {
		return x, stats, err
	}
	return x, stats, nil
}
