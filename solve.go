package ingrass

import (
	"context"
	"fmt"

	"ingrass/internal/precond"
	"ingrass/internal/solver"
)

// SolveOptions is the request-scoped knob set for Laplacian solves. A zero
// value means "all defaults". The same struct configures the outer flexible
// CG (Tol, MaxIter) and the preconditioner's truncated inner solve
// (InnerTol, InnerIters); it flows unchanged from the public API down to
// the innermost CG loop. The HTTP layer defines its own wire struct
// (cmd/ingrass solveRequest) because not every field is HTTP-settable.
type SolveOptions struct {
	// Tol is the relative residual target ||r|| <= Tol*||b||. Default 1e-8.
	Tol float64
	// MaxIter bounds outer iterations. 0 derives 10*n clamped to 20000; an
	// explicit value is used verbatim, never clamped.
	MaxIter int
	// InnerTol is the preconditioner's inner relative-residual target.
	// Default 1e-2.
	InnerTol float64
	// InnerIters caps inner iterations per preconditioner application.
	// Default 25.
	InnerIters int
	// Workers bounds the parallelism of Laplacian application and the fused
	// CG vector kernels; the count is clamped to GOMAXPROCS and dispatches
	// into a persistent worker pool (internal/kernel), so parallel solves
	// stay allocation-free on the warm path. It is honored where an
	// operator is built for this call (SolveLaplacian) and ignored on
	// shared, already-frozen factorizations (Service solves — configure
	// ServiceOptions.Solve.Workers instead), which is why the HTTP layer
	// does not expose it.
	Workers int
	// Format selects the frozen operator's sparse storage layout: "auto"
	// (default — size/padding heuristic), "csr", or "sell". Like Workers it
	// is honored where an operator is frozen for this call; configure
	// ServiceOptions.Solve.Format for engine snapshots. Unknown names fall
	// back to auto.
	Format string
}

func (o SolveOptions) internal() solver.Options {
	f, _ := solver.ParseFormat(o.Format)
	return solver.Options{
		Tol:        o.Tol,
		MaxIter:    o.MaxIter,
		InnerTol:   o.InnerTol,
		InnerIters: o.InnerIters,
		Workers:    o.Workers,
		Format:     f,
	}
}

// SolveStats reports a preconditioned Laplacian solve.
type SolveStats struct {
	// Iterations is the outer FCG iteration count.
	Iterations int `json:"iterations"`
	// Residual is the final relative residual.
	Residual float64 `json:"residual"`
	// Converged reports whether the tolerance was met.
	Converged bool `json:"converged"`
	// PrecondUses counts inner sparsifier solves.
	PrecondUses int `json:"precond_uses"`
	// Generation is the snapshot generation that served the solve. Only
	// set by Service.Solve; standalone SolveLaplacian leaves it zero.
	Generation uint64 `json:"generation"`
}

// SolveLaplacian solves the Laplacian system L_G x = b using flexible
// conjugate gradients preconditioned by the sparsifier h — the downstream
// application (fast circuit-style solves) that motivates maintaining a
// sparsifier in the first place. b must be mean-zero up to rounding (the
// system is singular with the constant null space); it is centered
// internally, and the returned solution is mean-zero.
//
// ctx cancellation or deadline expiry aborts the solve within one outer
// iteration; the error matches ErrCancelled via errors.Is and partial
// stats are returned. A solve that exhausts opts.MaxIter returns the best
// iterate alongside ErrNoConvergence.
func SolveLaplacian(ctx context.Context, g, h *Graph, b []float64, opts SolveOptions) ([]float64, SolveStats, error) {
	if len(b) != g.NumNodes() {
		return nil, SolveStats{}, fmt.Errorf("ingrass: rhs length %d != %d nodes", len(b), g.NumNodes())
	}
	if h.NumNodes() != g.NumNodes() {
		return nil, SolveStats{}, fmt.Errorf("ingrass: sparsifier node count mismatch")
	}
	fact, err := precond.Factorize(h.g, opts.internal())
	if err != nil {
		return nil, SolveStats{}, err
	}
	x := make([]float64, g.NumNodes())
	res, err := fact.SolveGraph(ctx, g.g, x, b, opts.internal())
	stats := SolveStats{
		Iterations:  res.Outer.Iterations,
		Residual:    res.Outer.Residual,
		Converged:   res.Outer.Converged,
		PrecondUses: res.InnerUses,
	}
	if err != nil {
		return x, stats, err
	}
	return x, stats, nil
}
