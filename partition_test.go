package ingrass

import (
	"testing"
)

func TestSpectralBisectPublic(t *testing.T) {
	// Two dense blobs and a weak bridge, via the public API.
	g := NewGraph(16)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if _, err := g.AddEdge(a, b, 4); err != nil {
				t.Fatal(err)
			}
			if _, err := g.AddEdge(8+a, 8+b, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := g.AddEdge(0, 8, 0.1); err != nil {
		t.Fatal(err)
	}

	p, err := SpectralBisect(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Side) != 16 {
		t.Fatalf("side length %d", len(p.Side))
	}
	// The two blobs must land on opposite sides, cutting only the bridge.
	for v := 1; v < 8; v++ {
		if p.Side[v] != p.Side[0] {
			t.Fatalf("blob A split at %d", v)
		}
	}
	for v := 8; v < 16; v++ {
		if p.Side[v] == p.Side[0] {
			t.Fatalf("blob B merged at %d", v)
		}
	}
	if p.CutWeight > 0.1001 {
		t.Fatalf("cut weight %v", p.CutWeight)
	}
	if p.Conductance <= 0 {
		t.Fatal("conductance must be positive")
	}
}

func TestSpectralBisectSparsifiedPublic(t *testing.T) {
	g, err := GenerateRandomGeometric(800, 0.08, 7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Sparsify(g, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SpectralBisect(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	viaH, err := SpectralBisectSparsified(g, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Quality within a small factor of the full-graph bisection.
	if viaH.CutWeight > 4*full.CutWeight {
		t.Fatalf("sparsified cut %v vs full %v", viaH.CutWeight, full.CutWeight)
	}
	// Errors propagate.
	if _, err := SpectralBisectSparsified(g, NewGraph(3), 1); err == nil {
		t.Fatal("expected node mismatch error")
	}
	if _, err := SpectralBisect(NewGraph(1), 1); err == nil {
		t.Fatal("expected too-small error")
	}
}
